"""The whole-program semantic layer shared by reprolint passes.

Per-file AST passes cannot see contracts that span functions and modules:
an encoder in ``engine/checkpoint.py`` spreading a helper's sections into
its document, a decoder looping over a tuple of section names, a raise in
``baselines/base.py`` that only reaches its handler three call frames up.
This module builds the three structures those checks need, all derived
conservatively from the cached ASTs (no imports, no execution):

* **module symbol tables** (:class:`ModuleInfo`) — module-level string and
  integer constants, the import table, every function/method keyed by
  qualified name (nested defs included), and the class table with base
  names;
* **a cross-module call graph** (:meth:`ProgramModel.call_graph`) —
  generalizing the ``no_recursion`` pass's local one: bare names resolve
  through the lexical scope chain and the import table, ``self.m()``
  through the class (and its subclasses: a call to a base method also
  targets every override, the conservative virtual dispatch), and
  ``obj.m()`` through parameter annotations or local ``obj = Class(...)``
  bindings;
* **a dict-key dataflow** (:meth:`ProgramModel.written_keys` /
  :meth:`ProgramModel.read_keys`) answering "which string keys does this
  function write/read on this dict", with ``**helper()`` spreads resolved
  through the call graph (including one level of ``base = helper(...)``
  name indirection and annotation-typed ``**obj.method()`` spreads into
  other modules) and decoder loops over literal tuples expanded
  (``for s in ("a", "b"): payload.get(s)`` reads both keys).

Everything is *conservative*: when a construct cannot be resolved
statically the analysis reports it as a problem (for the dataflow) or
simply drops the edge (for the call graph) instead of guessing.

Passes obtain one shared instance via ``ctx.program_model()``. In fixture
mode cross-module resolution is disabled — fixtures are self-contained
snippets, so every name must resolve within the fixture file itself.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from tools.reprolint import LintContext

#: A function in the program: (file path, qualified name within the
#: module — "func", "Class.method", "Class.method.nested", ...).
FuncId = tuple[Path, str]


@dataclass
class ModuleInfo:
    """Symbol table of one parsed module."""

    path: Path
    tree: ast.Module
    #: module-level ``NAME = <str|int constant>`` assignments
    constants: dict[str, object] = field(default_factory=dict)
    #: local name -> (module, attr or None): ``import m as x`` maps
    #: ``x -> (m, None)``; ``from m import a as b`` maps ``b -> (m, a)``.
    imports: dict[str, tuple[str, str | None]] = field(default_factory=dict)
    #: qualified name -> def node (methods "C.m", nested defs "f.g")
    functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = field(
        default_factory=dict
    )
    #: qualified name -> enclosing def nodes, outermost first (closures)
    enclosing: dict[str, list[ast.FunctionDef | ast.AsyncFunctionDef]] = field(
        default_factory=dict
    )
    classes: dict[str, ast.ClassDef] = field(default_factory=dict)
    #: class name -> base-name expressions rendered as dotted strings
    class_bases: dict[str, list[str]] = field(default_factory=dict)

    def resolve_const(self, node: ast.AST) -> object | None:
        """A literal constant, or a one-hop module-level Name lookup."""
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Name):
            return self.constants.get(node.id)
        return None


def _collect_module(path: Path, tree: ast.Module) -> ModuleInfo:
    info = ModuleInfo(path=path, tree=tree)
    for node in tree.body:
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Constant):
            if isinstance(node.value.value, (str, int)):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        info.constants[target.id] = node.value.value
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                info.imports[local] = (
                    alias.name if alias.asname else alias.name.split(".")[0],
                    None,
                )
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                info.imports[alias.asname or alias.name] = (
                    node.module, alias.name
                )

    def visit(node: ast.AST, prefix: str, stack: list) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                info.functions.setdefault(qual, child)
                info.enclosing.setdefault(qual, list(stack))
                visit(child, f"{qual}.", stack + [child])
            elif isinstance(child, ast.ClassDef):
                info.classes.setdefault(child.name, child)
                info.class_bases.setdefault(
                    child.name,
                    [_dotted(b) for b in child.bases if _dotted(b)],
                )
                visit(child, f"{prefix}{child.name}.", stack)
            else:
                visit(child, prefix, stack)

    visit(tree, "", [])
    return info


def _dotted(node: ast.AST) -> str:
    """Render ``a.b.c`` attribute chains as a dotted string ('' if not)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _walk_shallow(node: ast.AST) -> Iterable[ast.AST]:
    """Walk a function body without descending into nested defs/classes
    (their statements belong to a different scope)."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            stack.extend(ast.iter_child_nodes(child))


def _assign_targets(node: ast.AST) -> tuple[list[ast.expr], ast.expr] | None:
    """Normalize ``Assign`` / ``AnnAssign`` to ``(targets, value)``
    (None for anything else, including a bare annotation)."""
    if isinstance(node, ast.Assign):
        return node.targets, node.value
    if isinstance(node, ast.AnnAssign) and node.value is not None:
        return [node.target], node.value
    return None


class KeyFlowResult:
    """Outcome of one written/read-keys query."""

    def __init__(self) -> None:
        self.keys: set[str] = set()
        self.line: int | None = None
        self.problems: list[tuple[int, str]] = []


class ProgramModel:
    """Lazily-built whole-program model over the lint context's ASTs."""

    #: recursion guard for spread resolution
    _MAX_DEPTH = 4

    def __init__(self, ctx: "LintContext") -> None:
        self.ctx = ctx
        self._modules: dict[Path, ModuleInfo] = {}

    # -- symbol tables ------------------------------------------------
    def module(self, path: Path) -> ModuleInfo:
        path = Path(path).resolve()
        if path not in self._modules:
            self._modules[path] = _collect_module(path, self.ctx.tree(path))
        return self._modules[path]

    def module_by_name(self, dotted: str) -> ModuleInfo | None:
        """Resolve a dotted module name to its source under ``src/``.

        Disabled in fixture mode: fixtures are self-contained, so a
        cross-module reference in a fixture simply fails to resolve.
        """
        if self.ctx.fixture_mode:
            return None
        base = self.ctx.root / "src" / Path(*dotted.split("."))
        for candidate in (base.with_suffix(".py"), base / "__init__.py"):
            if candidate.is_file():
                return self.module(candidate)
        return None

    def find_function(
        self, mod: ModuleInfo, spec: str
    ) -> tuple[ModuleInfo, ast.FunctionDef | ast.AsyncFunctionDef] | None:
        """Find ``"func"`` / ``"Class.method"`` in ``mod``, following one
        ``from m import name`` hop for plain function names."""
        node = mod.functions.get(spec)
        if node is not None:
            return mod, node
        if "." not in spec and spec in mod.imports:
            target_mod, attr = mod.imports[spec]
            other = self.module_by_name(target_mod)
            if other is not None:
                node = other.functions.get(attr or spec)
                if node is not None:
                    return other, node
        return None

    # -- dict-key dataflow --------------------------------------------
    def written_keys(self, mod: ModuleInfo, spec: str) -> KeyFlowResult:
        """String keys ``spec`` writes on its tracked dict.

        ``spec`` is ``"func"`` / ``"Class.method"``, optionally suffixed
        ``":varname"`` to track a named local dict instead of the returned
        one. Collected: dict-literal keys (with ``**`` spreads resolved),
        and ``var["k"] = ...`` subscript writes.
        """
        result = KeyFlowResult()
        func_spec, _, var = spec.partition(":")
        found = self.find_function(mod, func_spec)
        if found is None:
            result.problems.append(
                (1, f"function {func_spec!r} not found")
            )
            return result
        fmod, func = found
        result.line = func.lineno
        self._collect_written(fmod, func, var or None, result, self._MAX_DEPTH)
        return result

    def _collect_written(
        self,
        mod: ModuleInfo,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        var: str | None,
        result: KeyFlowResult,
        depth: int,
    ) -> None:
        tracked = var
        if tracked is None:
            # Default: the returned dict — a literal, or a local Name.
            for node in _walk_shallow(func):
                if isinstance(node, ast.Return) and node.value is not None:
                    if isinstance(node.value, ast.Dict):
                        self._dict_literal_keys(
                            mod, func, node.value, result, depth
                        )
                    elif isinstance(node.value, ast.Name):
                        tracked = node.value.id
            if tracked is None:
                return
        for node in _walk_shallow(func):
            normalized = _assign_targets(node)
            if normalized is None:
                continue
            targets, value = normalized
            for target in targets:
                if (isinstance(target, ast.Name) and target.id == tracked
                        and isinstance(value, ast.Dict)):
                    self._dict_literal_keys(mod, func, value, result, depth)
                elif (isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == tracked
                        and isinstance(target.slice, ast.Constant)
                        and isinstance(target.slice.value, str)):
                    result.keys.add(target.slice.value)

    def _dict_literal_keys(
        self,
        mod: ModuleInfo,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        literal: ast.Dict,
        result: KeyFlowResult,
        depth: int,
    ) -> None:
        for key, value in zip(literal.keys, literal.values):
            if key is not None:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    result.keys.add(key.value)
                else:
                    result.problems.append(
                        (key.lineno, "non-literal dict key")
                    )
                continue
            # ``**value`` spread
            if depth <= 0:
                result.problems.append(
                    (value.lineno, "spread nesting too deep to resolve")
                )
                continue
            target = self._resolve_spread(mod, func, value)
            if target is None:
                result.problems.append((
                    value.lineno,
                    "cannot statically resolve '**' spread"
                    f" (line {value.lineno})",
                ))
            elif isinstance(target, ast.Dict):
                self._dict_literal_keys(mod, func, target, result, depth - 1)
            else:
                tmod, tfunc = target
                self._collect_written(tmod, tfunc, None, result, depth - 1)

    def _resolve_spread(
        self,
        mod: ModuleInfo,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        value: ast.AST,
    ):
        """Resolve a ``**value`` spread to a dict literal or a function
        whose returned dict supplies the keys (or None)."""
        # ``**name`` — a local assigned from a call or a literal.
        if isinstance(value, ast.Name):
            for node in _walk_shallow(func):
                normalized = _assign_targets(node)
                if normalized is None:
                    continue
                targets, assigned = normalized
                for target in targets:
                    if (isinstance(target, ast.Name)
                            and target.id == value.id):
                        if isinstance(assigned, ast.Dict):
                            return assigned
                        if isinstance(assigned, ast.Call):
                            return self._resolve_spread(
                                mod, func, assigned
                            )
            return None
        if not isinstance(value, ast.Call):
            return None
        callee = value.func
        # ``**helper(...)`` — module function (or one import hop away).
        if isinstance(callee, ast.Name):
            return self.find_function(mod, callee.id)
        # ``**obj.method(...)`` — type the receiver via annotations or a
        # local ``obj = Class(...)`` binding, then look the method up.
        if isinstance(callee, ast.Attribute) and isinstance(
            callee.value, ast.Name
        ):
            cls = self._infer_type(mod, func, callee.value.id)
            if cls is not None:
                cmod, cname = cls
                return self.find_function(cmod, f"{cname}.{callee.attr}")
        return None

    def _infer_type(
        self,
        mod: ModuleInfo,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        name: str,
    ) -> tuple[ModuleInfo, str] | None:
        """Infer a local name's class: parameter annotations (walking the
        lexical scope chain outward for closures) or ``name = Class(...)``
        assignments."""
        qual = next(
            (q for q, node in mod.functions.items() if node is func), None
        )
        chain = [func] + list(reversed(mod.enclosing.get(qual or "", [])))
        for scope in chain:
            args = scope.args
            for arg in (
                args.posonlyargs + args.args + args.kwonlyargs
            ):
                if arg.arg == name and arg.annotation is not None:
                    return self._resolve_class(mod, arg.annotation)
            for node in _walk_shallow(scope):
                normalized = _assign_targets(node)
                if normalized is None or not isinstance(
                    normalized[1], ast.Call
                ):
                    continue
                targets, value = normalized
                for target in targets:
                    if isinstance(target, ast.Name) and target.id == name:
                        resolved = self._resolve_class(mod, value.func)
                        if resolved is not None:
                            return resolved
        return None

    def _resolve_class(
        self, mod: ModuleInfo, node: ast.AST
    ) -> tuple[ModuleInfo, str] | None:
        """Resolve a class-name expression (Name, dotted, or a string
        annotation) to its defining module."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            name = node.value
        else:
            name = _dotted(node)
        if not name:
            return None
        head, _, rest = name.partition(".")
        if not rest and head in mod.classes:
            return mod, head
        if head in mod.imports:
            target_mod, attr = mod.imports[head]
            if attr is not None and not rest:
                # from m import Class
                other = self.module_by_name(target_mod)
                if other is not None and attr in other.classes:
                    return other, attr
            elif attr is None and rest:
                # import m; m.Class
                other = self.module_by_name(target_mod)
                if other is not None and rest in other.classes:
                    return other, rest
        return None

    def read_keys(self, mod: ModuleInfo, spec: str) -> KeyFlowResult:
        """String keys ``spec`` reads off its tracked mapping parameter.

        ``spec`` is ``"func"`` / ``"Class.method"``, optionally suffixed
        ``":param"`` (default: the first parameter, skipping
        ``self``/``cls``). Collected: ``p["k"]``, ``p.get("k")``/``.pop``,
        ``"k" in p``, and loop-expanded reads where the key is a loop
        variable over a literal tuple of strings.
        """
        result = KeyFlowResult()
        func_spec, _, var = spec.partition(":")
        found = self.find_function(mod, func_spec)
        if found is None:
            result.problems.append((1, f"function {func_spec!r} not found"))
            return result
        fmod, func = found
        result.line = func.lineno
        tracked = var or None
        if tracked is None:
            params = [
                a.arg
                for a in func.args.posonlyargs + func.args.args
                if a.arg not in ("self", "cls")
            ]
            if not params:
                result.problems.append(
                    (func.lineno, f"{func_spec} has no parameter to track")
                )
                return result
            tracked = params[0]

        # Loop variables bound over literal string tuples/lists.
        loops: dict[str, set[str]] = {}
        for node in _walk_shallow(func):
            if (isinstance(node, ast.For)
                    and isinstance(node.target, ast.Name)
                    and isinstance(node.iter, (ast.Tuple, ast.List))):
                values = {
                    e.value
                    for e in node.iter.elts
                    if isinstance(e, ast.Constant)
                    and isinstance(e.value, str)
                }
                if values and len(values) == len(node.iter.elts):
                    loops.setdefault(node.target.id, set()).update(values)

        def expand(key_node: ast.AST) -> set[str]:
            if isinstance(key_node, ast.Constant) and isinstance(
                key_node.value, str
            ):
                return {key_node.value}
            if isinstance(key_node, ast.Name) and key_node.id in loops:
                return set(loops[key_node.id])
            return set()

        for node in _walk_shallow(func):
            if (isinstance(node, ast.Subscript)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == tracked):
                result.keys.update(expand(node.slice))
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == tracked
                    and node.func.attr in ("get", "pop")
                    and node.args):
                result.keys.update(expand(node.args[0]))
            elif isinstance(node, ast.Compare) and len(node.ops) == 1:
                if (isinstance(node.ops[0], (ast.In, ast.NotIn))
                        and isinstance(node.comparators[0], ast.Name)
                        and node.comparators[0].id == tracked):
                    result.keys.update(expand(node.left))
        return result

    # -- cross-module call graph --------------------------------------
    def call_graph(self, paths: Iterable[Path]) -> "CallGraph":
        """Build the name-resolved call graph over ``paths``."""
        return CallGraph(self, [Path(p).resolve() for p in paths])


class CallGraph:
    """Cross-module call graph with conservative virtual dispatch."""

    def __init__(self, model: ProgramModel, paths: list[Path]) -> None:
        self.model = model
        self.paths = paths
        #: FuncId -> def node
        self.nodes: dict[FuncId, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        #: FuncId -> list of (Call node, resolved target FuncIds)
        self.calls: dict[FuncId, list[tuple[ast.Call, list[FuncId]]]] = {}
        #: FuncId -> caller FuncIds
        self.callers: dict[FuncId, set[FuncId]] = {}
        self._subclasses = self._class_hierarchy()
        self._build()

    def _class_hierarchy(self) -> dict[tuple[Path, str], list[tuple[Path, str]]]:
        children: dict[tuple[Path, str], list[tuple[Path, str]]] = {}
        for path in self.paths:
            mod = self.model.module(path)
            for cls, bases in mod.class_bases.items():
                for base in bases:
                    resolved = self.model._resolve_class(
                        mod, ast.parse(base, mode="eval").body
                    )
                    if resolved is not None:
                        bmod, bname = resolved
                        children.setdefault(
                            (bmod.path, bname), []
                        ).append((path, cls))
        # transitive closure
        changed = True
        while changed:
            changed = False
            for key, subs in children.items():
                extra = [
                    s for sub in subs for s in children.get(sub, [])
                    if s not in subs
                ]
                if extra:
                    subs.extend(extra)
                    changed = True
        return children

    def _build(self) -> None:
        for path in self.paths:
            mod = self.model.module(path)
            for qual, node in mod.functions.items():
                self.nodes[(path, qual)] = node
        for path in self.paths:
            mod = self.model.module(path)
            for qual, node in mod.functions.items():
                fid = (path, qual)
                sites: list[tuple[ast.Call, list[FuncId]]] = []
                for child in _walk_shallow(node):
                    if isinstance(child, ast.Call):
                        targets = self._resolve(mod, qual, node, child)
                        targets = [t for t in targets if t in self.nodes]
                        if targets:
                            sites.append((child, targets))
                            for t in targets:
                                self.callers.setdefault(t, set()).add(fid)
                self.calls[fid] = sites

    def _expand_overrides(self, target: FuncId) -> list[FuncId]:
        """A call to ``C.m`` also targets every subclass override of
        ``m`` (conservative virtual dispatch)."""
        path, qual = target
        if "." not in qual:
            return [target]
        cls, _, method = qual.rpartition(".")
        if "." in cls:
            return [target]
        out = [target]
        for spath, sname in self._subclasses.get((path, cls), []):
            sid = (spath, f"{sname}.{method}")
            if sid in self.nodes:
                out.append(sid)
        return out

    def _resolve(
        self,
        mod: ModuleInfo,
        qual: str,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        call: ast.Call,
    ) -> list[FuncId]:
        target = call.func
        if isinstance(target, ast.Name):
            name = target.id
            # Lexically enclosing function scopes first (nested defs of
            # this function, then of its enclosing functions — class
            # scope is *not* in the bare-name lookup chain), then module
            # scope.
            prefix = qual
            while prefix:
                if prefix == qual or prefix in mod.functions:
                    nested = f"{prefix}.{name}"
                    if nested in mod.functions:
                        return [(mod.path, nested)]
                prefix = prefix.rpartition(".")[0]
            if name in mod.functions:
                return [(mod.path, name)]
            if name in mod.classes:
                init = f"{name}.__init__"
                return self._expand_overrides((mod.path, init))
            if name in mod.imports:
                tmod, attr = mod.imports[name]
                other = self.model.module_by_name(tmod)
                if other is not None and attr:
                    if attr in other.functions:
                        return [(other.path, attr)]
                    if attr in other.classes:
                        return self._expand_overrides(
                            (other.path, f"{attr}.__init__")
                        )
            return []
        if isinstance(target, ast.Attribute) and isinstance(
            target.value, ast.Name
        ):
            obj, method = target.value.id, target.attr
            if obj == "self":
                cls = qual.split(".")[0] if "." in qual else None
                if cls and cls in mod.classes:
                    resolved = self._method_in_hierarchy(mod, cls, method)
                    if resolved is not None:
                        return self._expand_overrides(resolved)
                return []
            inferred = self.model._infer_type(mod, func, obj)
            if inferred is not None:
                cmod, cname = inferred
                resolved = self._method_in_hierarchy(cmod, cname, method)
                if resolved is not None:
                    return self._expand_overrides(resolved)
                return []
            if obj in mod.imports and mod.imports[obj][1] is None:
                other = self.model.module_by_name(mod.imports[obj][0])
                if other is not None and method in other.functions:
                    return [(other.path, method)]
        return []

    def _method_in_hierarchy(
        self, mod: ModuleInfo, cls: str, method: str
    ) -> FuncId | None:
        """Look ``method`` up on ``cls`` then its base classes."""
        seen: set[tuple[Path, str]] = set()
        queue: list[tuple[ModuleInfo, str]] = [(mod, cls)]
        while queue:
            cmod, cname = queue.pop(0)
            if (cmod.path, cname) in seen:
                continue
            seen.add((cmod.path, cname))
            qual = f"{cname}.{method}"
            if qual in cmod.functions:
                return (cmod.path, qual)
            for base in cmod.class_bases.get(cname, []):
                resolved = self.model._resolve_class(
                    cmod, ast.parse(base, mode="eval").body
                )
                if resolved is not None:
                    queue.append(resolved)
        return None

    def roots(self) -> list[FuncId]:
        """Functions with no resolved in-graph callers."""
        return [fid for fid in self.nodes if not self.callers.get(fid)]
