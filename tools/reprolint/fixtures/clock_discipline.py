"""Known-bad fixture for the clock_discipline pass: a naked except and
wall-clock reads (both spellings) in engine-scoped code."""

import time
from time import time as now


def deadline_check(budget):
    try:
        started = time.time()  # violation: wall clock in the engine
    except:  # violation: naked except
        started = now()  # violation: aliased wall clock
    elapsed = time.perf_counter()  # clean: monotonic duration clock
    return started, elapsed, budget
