"""Known-bad fixture for the stop_reasons pass: raw literals that are not
STOP_REASONS members, in each flagged position."""


def finish(runtime, result, make_result):
    runtime.stop_reason = "time-limit"  # violation: wrong spelling
    if result.stop_reason == "memory":  # violation: not a member
        pass
    if result.stop_reason == "cancelled":  # clean: canonical member
        pass
    return make_result(stop_reason="emb_limit")  # violation: not a member
