"""Known-bad fixture for the layering pass: a guarded-layer module that
imports the CLI (top-level) and bench (function-local, which only the
static AST scan can see)."""


from repro.cli import main  # violation: guarded layer importing the CLI


def lazy_bench_import():
    import repro.bench.harness  # violation: lazy import of bench

    return repro.bench.harness, main
