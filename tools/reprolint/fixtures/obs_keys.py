"""Known-bad fixture for the obs_keys pass: counter, metric, and recorder
event literals that exist in no registry (typos of real names)."""


def record(counters, registry, recorder, bytes_read):
    counters.inc("ccsr.bytes_red", bytes_read)  # violation: typo
    counters.inc("nodes")  # clean: STAT_KEYS member
    counters.inc("plan_cache.hits")  # clean: KNOWN_COUNTERS member
    registry.gauge("reed_seconds").set(1.0)  # violation: typo
    registry.counter("embeddings").set(3)  # clean: KNOWN_METRICS member
    recorder.record("degrad", rung="evict_memo")  # violation: typo
    recorder.record("degrade", rung="evict_memo")  # clean: KNOWN_EVENTS
