"""Known-bad fixture for the exception_flow pass: a budget raise escapes
through two call frames to an API root with no handler anywhere, and a
local handler swallows the limit signal without mapping it to a
stop-reason outcome."""


class TimeLimitExceeded(Exception):
    pass


class EmbeddingLimitExceeded(Exception):
    pass


def tick(budget):
    if budget <= 0:
        # violation: escapes tick -> search -> run_query (a root) with
        # no handler mapping it to a STOP_REASONS outcome
        raise TimeLimitExceeded("out of time")


def search(budget):
    total = 0
    for step in range(3):
        tick(budget - step)
        total += 1
    return total


def run_query(budget):
    return search(budget)


def swallow(budget):
    try:
        if budget <= 0:
            raise EmbeddingLimitExceeded("cap reached")
    except EmbeddingLimitExceeded:
        # violation: neither maps to a stop reason nor re-raises
        return None
    return budget
