"""Known-bad fixture for the signal_safety pass: an installed SIGINT
handler acquires a lock, flushes a file, prints to buffered stdout, and
opens a file — none of which belong in a signal handler."""

import signal


def install(token, lock, log):
    def handler(signum, frame):
        token.trip("SIGINT")  # clean: allowlisted cancel-token trip
        with lock:  # violation: lock acquisition inside a handler
            log.flush()  # violation: .flush() is not allowlisted
        print("interrupted")  # violation: print without file=sys.stderr
        open("/tmp/handler-dump", "w")  # violation: open() call

    signal.signal(signal.SIGINT, handler)
