"""Known-bad fixture for the checkpoint_fields pass: the payload dropped
the 'progress' section and grew an unversioned 'extra' section without
bumping CHECKPOINT_VERSION; a carried counter is not a STAT_KEYS member."""

CHECKPOINT_FORMAT = "repro-checkpoint"
CHECKPOINT_VERSION = 1

_RUNTIME_COUNTERS = (
    "nodes",
    "backtracks",
    "node_visits",  # violation: not a STAT_KEYS member
)


def checkpoint_payload(stream, store, pattern, variant, planner):
    return {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "pattern": {},
        "store": {},
        "query": {},
        "limits": {},
        # violation: 'progress' missing, 'extra' added, version not bumped
        "extra": {},
        "state": {},
    }
