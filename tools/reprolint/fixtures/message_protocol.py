"""Known-bad fixture for the message_protocol pass: a send site uses an
unregistered kind, the dispatcher compares against a kind that exists in
no registry, and a registered kind is never routed."""

MESSAGE_KINDS = ("ready", "done", "lost")


def worker(results, unit):
    results.put(("ready", unit))  # clean: registered kind
    results.put(("progress", unit, 3))  # violation: unregistered kind
    results.put(("done", unit))  # clean: registered kind


def handle(msg):
    kind = msg[0]
    if kind == "ready":
        return "armed"
    elif kind == "retired":  # violation: unregistered kind (dead branch)
        return "gone"
    elif kind == "done":
        return "finished"
    # violation: registered kind "lost" is never handled
    return None
