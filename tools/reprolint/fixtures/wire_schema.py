"""Known-bad fixture for the wire_schema pass: the encoder writes a key
outside the manifest, a declared key is written by no encoder, the
decoder reads a key the encoders never emit, and a second encoder forgets
the format/version stamps."""

DEMO_FORMAT = "demo-doc"
DEMO_VERSION = 1

WIRE_MANIFESTS = {
    "demo": {
        "format": DEMO_FORMAT,
        "version": DEMO_VERSION,
        # violation: "ghost" is declared but no encoder writes it
        "keys": ("format", "version", "body", "ghost"),
        "encoders": ("encode_demo", "encode_unstamped"),
        "decoders": ("decode_demo",),
    },
}


def encode_demo(body, meta):
    return {
        "format": DEMO_FORMAT,
        "version": DEMO_VERSION,
        "body": body,
        "trailer": meta,  # violation: not in the manifest
    }


def encode_unstamped(body):
    # violation: no format/version stamp on the document
    return {"body": body}


def decode_demo(payload):
    if payload.get("format") != DEMO_FORMAT:
        raise ValueError("foreign document")
    if payload.get("version") != DEMO_VERSION:
        raise ValueError("unsupported version")
    # violation: reads "checksum", which the encoders never write
    return payload["body"], payload.get("checksum")
