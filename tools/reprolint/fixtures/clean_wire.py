"""Clean fixture for the wire_schema pass: a module whose encoder,
decoder, and manifest agree exactly. The Hypothesis property in
tests/test_reprolint.py mutates this file (dropping one encoder key)
and asserts the pass always flags the drift; keep each written key on
its own line so the mutation stays a one-line deletion."""

DOC_FORMAT = "clean-doc"
DOC_VERSION = 1

WIRE_MANIFESTS = {
    "clean-doc": {
        "format": DOC_FORMAT,
        "version": DOC_VERSION,
        "keys": ("format", "version", "head", "body", "tail"),
        "encoders": ("encode_doc",),
        "decoders": ("decode_doc",),
    },
}


def encode_doc(head, body, tail):
    return {
        "format": DOC_FORMAT,
        "version": DOC_VERSION,
        "head": head,
        "body": body,
        "tail": tail,
    }


def decode_doc(payload):
    if payload.get("format") != DOC_FORMAT:
        raise ValueError("foreign document")
    if payload.get("version") != DOC_VERSION:
        raise ValueError("unsupported version")
    return payload["head"], payload["body"], payload.get("tail")
