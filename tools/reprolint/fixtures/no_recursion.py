"""Known-bad fixture for the no_recursion pass: a direct self-recursive
function, a mutually recursive pair, and a recursive method."""


def descend(frame):  # violation: direct self-recursion
    if frame:
        return descend(frame[1:])
    return 0


def ping(n):  # violation: mutual recursion (ping -> pong -> ping)
    return pong(n - 1) if n else 0


def pong(n):  # violation: mutual recursion (pong -> ping -> pong)
    return ping(n - 1) if n else 0


class Walker:
    def walk(self, node):  # violation: recursive method via self
        for child in node.children:
            self.walk(child)


def iterative(frames):  # clean: explicit stack, must NOT be flagged
    stack = list(frames)
    while stack:
        stack.pop()
    return 0
