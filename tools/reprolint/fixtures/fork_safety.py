"""Known-bad fixture for the fork_safety pass: module-level mutable
registries in a (pretend) worker entrypoint module."""

import collections
import logging

REGISTRY = {}  # violation: dict display

ACTIVE_WORKERS = []  # violation: list display

SEEN: set = set()  # violation: annotated set() call

PENDING = collections.deque()  # violation: deque via attribute call

BY_ID = {i: None for i in range(4)}  # violation: dict comprehension

FIRST, REST = [], ()  # violation (FIRST only): tuple-target list display

STOP_ORDER = ("time_limit", "cancelled")  # clean: tuple constant

KNOWN = frozenset({"a", "b"})  # clean: frozenset constant

LIMIT = 3  # clean: number

logger = logging.getLogger(__name__)  # clean: allowlisted singleton


def helper():
    local = {}  # clean: function-local state is per-process by nature
    return local
