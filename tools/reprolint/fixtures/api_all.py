"""Known-bad fixture for the api_all pass: a stale export, a duplicate,
and a non-string entry."""

import json

__all__ = [
    "parse",  # clean: bound below
    "json",  # clean: imported above
    "removed_function",  # violation: not bound anywhere
    "parse",  # violation: duplicate
    42,  # violation: not a string literal
]


def parse(text):
    return json.loads(text)
