"""Clean fixture for the message_protocol pass: every send site uses a
registered kind and the dispatcher routes all of them. The Hypothesis
property in tests/test_reprolint.py mutates this file (appending a send
with an unregistered kind) and asserts the pass always flags it."""

MESSAGE_KINDS = ("ready", "beat", "done")


def worker(results, unit):
    results.put(("ready", unit))
    results.put(("beat", unit, 1))
    results.put(("done", unit, None))


def handle(msg):
    kind = msg[0]
    if kind == "ready":
        return "armed"
    elif kind == "beat":
        return "alive"
    elif kind == "done":
        return "finished"
    return None
