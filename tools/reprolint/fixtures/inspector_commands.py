"""Known-bad fixture for the inspector_commands pass: command literals
that exist in no registry (typos and never-registered commands)."""


def poke(client, inspector):
    client.request("stauts")  # violation: typo of "status"
    client.request("status")  # clean: KNOWN_COMMANDS member
    client.request("shutdown")  # violation: never a registered command
    inspector.handle("progres", {})  # violation: typo of "progress"
    inspector.handle("cancel", {})  # clean: KNOWN_COMMANDS member


HANDLERS = {
    "progress": "_cmd_progress",  # clean: KNOWN_COMMANDS member
    "cancel-all": "_cmd_cancel_all",  # violation: not registered
}
