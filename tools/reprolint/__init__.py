"""reprolint: AST-based invariant passes for this repository.

The codebase is held together by contracts that ordinary linters cannot
see: the iterative engine must stay recursion-free, every counter/metric
name must exist in a registry, ``stop_reason`` strings must be members of
``STOP_REASONS``, the checkpoint document must track
``CHECKPOINT_VERSION``, and the engine layer must never import the CLI.
Each contract is one *pass* here — a small AST (or subprocess) check with
its own known-bad fixture under ``tools/reprolint/fixtures/``.

Usage::

    python -m tools.reprolint                 # lint the live tree
    python -m tools.reprolint --list          # show the pass catalog
    python -m tools.reprolint --json          # machine-readable output
    python -m tools.reprolint --select layering,no_recursion
    python -m tools.reprolint path/to/file.py # fixture mode: lint only
                                              # the given files

Exit status: 0 clean, 1 with one diagnostic per violation, 2 on usage
errors. See ``docs/static-analysis.md`` for the pass catalog and how to
add a pass.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator

REPO = Path(__file__).resolve().parent.parent.parent


@dataclass(frozen=True)
class Violation:
    """One diagnostic: which pass flagged what, where."""

    pass_name: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.pass_name}] {self.message}"

    def as_dict(self) -> dict:
        return {
            "pass": self.pass_name,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


class LintContext:
    """Shared state for one lint run: file discovery and a parse cache.

    ``explicit_paths`` switches the run into *fixture mode*: every pass
    checks exactly those files (regardless of its live-tree scope) and
    skips whole-tree checks that make no sense on a snippet (the dynamic
    import probe, the checkpoint-manifest lookup against the live module).
    """

    def __init__(self, root: Path | None = None,
                 explicit_paths: list[Path] | None = None):
        self.root = Path(root or REPO)
        self.explicit_paths = (
            [Path(p).resolve() for p in explicit_paths]
            if explicit_paths
            else None
        )
        self._trees: dict[Path, ast.Module] = {}
        self._model = None

    @property
    def fixture_mode(self) -> bool:
        return self.explicit_paths is not None

    def ensure_importable(self) -> None:
        """Make ``repro`` importable (passes read live registries)."""
        src = str(self.root / "src")
        if src not in sys.path:
            sys.path.insert(0, src)

    def files(self, *relative_scopes: str) -> Iterator[Path]:
        """Yield the Python files a pass should check.

        ``relative_scopes`` are repo-relative files or directories (e.g.
        ``"src/repro"`` or ``"src/repro/engine/executor.py"``); in fixture
        mode the explicit paths are yielded instead.
        """
        if self.explicit_paths is not None:
            yield from self.explicit_paths
            return
        for scope in relative_scopes:
            path = self.root / scope
            if path.is_file():
                yield path
            else:
                yield from sorted(path.rglob("*.py"))

    def tree(self, path: Path) -> ast.Module:
        """Parse (and cache) one file."""
        path = Path(path)
        if path not in self._trees:
            self._trees[path] = ast.parse(
                path.read_text(encoding="utf-8"), filename=str(path)
            )
        return self._trees[path]

    def rel(self, path: Path) -> str:
        """Repo-relative display path (absolute when outside the repo)."""
        try:
            return str(Path(path).resolve().relative_to(self.root))
        except ValueError:
            return str(path)

    def program_model(self):
        """The shared :class:`~tools.reprolint.model.ProgramModel` for
        this run (built lazily, reused across semantic passes)."""
        if self._model is None:
            from tools.reprolint.model import ProgramModel

            self._model = ProgramModel(self)
        return self._model


class LintPass:
    """Base class for a pass: subclass, set ``name``/``description``, and
    implement :meth:`run` returning a list of :class:`Violation`."""

    name: str = ""
    description: str = ""

    def run(self, ctx: LintContext) -> list[Violation]:
        raise NotImplementedError

    def violation(self, ctx: LintContext, path: Path, line: int,
                  message: str) -> Violation:
        return Violation(self.name, ctx.rel(path), line, message)


#: The pass registry, in registration order.
REGISTRY: dict[str, LintPass] = {}


def register(cls: type[LintPass]) -> type[LintPass]:
    """Class decorator adding a pass to :data:`REGISTRY`."""
    if not cls.name:
        raise ValueError(f"pass {cls.__name__} has no name")
    if cls.name in REGISTRY:
        raise ValueError(f"duplicate pass name {cls.name!r}")
    REGISTRY[cls.name] = cls()
    return cls


def load_passes() -> dict[str, LintPass]:
    """Import every pass module (registration is an import side effect)."""
    from tools.reprolint import passes  # noqa: F401  (side effect)

    return REGISTRY


def run_passes(
    ctx: LintContext,
    select: Iterable[str] | None = None,
    on_pass: Callable[[str, list[Violation]], None] | None = None,
) -> list[Violation]:
    """Run the (selected) passes and return every violation found."""
    registry = load_passes()
    names = list(select) if select else list(registry)
    unknown = [n for n in names if n not in registry]
    if unknown:
        raise KeyError(
            f"unknown pass(es) {', '.join(unknown)};"
            f" available: {', '.join(registry)}"
        )
    violations: list[Violation] = []
    for name in names:
        found = registry[name].run(ctx)
        if on_pass is not None:
            on_pass(name, found)
        violations.extend(found)
    return violations
