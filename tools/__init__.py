"""Repository tooling (static-analysis passes, CI gates)."""
