"""Tests at the paper's large-pattern end: hundreds of pattern vertices.

Fig. 10 plans patterns up to 2000 vertices; these tests make sure the
engine's full path (plan *and* execute) survives deep recursion and that
counting with factorization handles very wide independence.
"""

import itertools

import pytest

from repro.core import CSCE, Variant
from repro.graph import Graph


class TestDeepPatterns:
    def test_match_400_vertex_path(self):
        """A 400-vertex path matched in a 600-vertex path: recursion depth
        equals the pattern size, well past Python's default limit once the
        candidate machinery stacks frames."""
        n = 600
        g = Graph.from_edges(n, [(i, i + 1) for i in range(n - 1)])
        k = 400
        p = Graph.from_edges(k, [(i, i + 1) for i in range(k - 1)])
        result = CSCE(g).match(p, "edge_induced", count_only=True)
        # A path of k vertices embeds (n - k + 1) times per direction.
        assert result.count == 2 * (n - k + 1)

    def test_enumerate_deep_pattern(self):
        n, k = 320, 300
        g = Graph.from_edges(n, [(i, i + 1) for i in range(n - 1)])
        p = Graph.from_edges(k, [(i, i + 1) for i in range(k - 1)])
        result = CSCE(g).match(p, "edge_induced")
        assert result.count == 2 * (n - k + 1)
        assert all(len(m) == k for m in result.embeddings)

    def test_plan_large_pattern_all_variants(self):
        from repro.graph.generators import power_law_graph
        from repro.graph.sampling import sample_pattern

        g = power_law_graph(800, 4, num_labels=50, seed=10)
        p = sample_pattern(g, 150, rng=0, style="induced")
        engine = CSCE(g)
        for variant in Variant:
            plan = engine.build_plan(p, variant)
            plan.validate()
            assert len(plan.order) == 150


class TestWideFactorization:
    def test_star_with_many_distinct_leaves(self):
        """A star whose leaves all carry distinct labels: counting must
        factorize into a product over the leaves instead of enumerating the
        full cross product (which would be 5^20 branches)."""
        leaves = 20
        per_label = 5
        g = Graph()
        g.add_vertex("hub")
        for label in range(leaves):
            for _ in range(per_label):
                v = g.add_vertex(f"leaf{label}")
                g.add_edge(0, v)
        p = Graph()
        p.add_vertex("hub")
        for label in range(leaves):
            v = p.add_vertex(f"leaf{label}")
            p.add_edge(0, v)
        result = CSCE(g).match(p, "edge_induced", count_only=True, time_limit=30)
        assert not result.timed_out
        assert result.count == per_label**leaves
        assert result.stats["factorizations"] > 0

    def test_homomorphic_same_label_wide_star(self):
        """Same-label leaves factorize under homomorphism (no injectivity):
        3^12 mappings counted without 3^12 recursion branches."""
        leaves = 12
        g = Graph()
        g.add_vertex("hub")
        for _ in range(3):
            v = g.add_vertex("leaf")
            g.add_edge(0, v)
        p = Graph()
        p.add_vertex("hub")
        for _ in range(leaves):
            v = p.add_vertex("leaf")
            p.add_edge(0, v)
        result = CSCE(g).match(p, "homomorphic", count_only=True, time_limit=30)
        assert result.count == 3**leaves
        # Far fewer recursion nodes than mappings proves the factorization.
        assert result.stats["nodes"] < 3**leaves


class TestMemoLimit:
    def test_memo_cap_preserves_correctness(self):
        from conftest import make_random_graph
        from repro.engine.executor import execute_physical
        from repro.engine.physical import compile_plan
        from repro.engine.results import MatchOptions
        from repro.graph.sampling import sample_pattern

        g = make_random_graph(15, 30, num_labels=2, seed=77)
        p = sample_pattern(g, 5, rng=1)
        engine = CSCE(g)
        plan = engine.build_plan(p, "edge_induced")
        physical = compile_plan(plan)
        unlimited = execute_physical(
            physical, MatchOptions(count_only=True)
        ).count

        # Re-run with the SCE memo capped at one entry: evictions must not
        # change the answer.
        capped = execute_physical(
            physical, MatchOptions(count_only=True, memo_limit=1)
        ).count
        assert capped == unlimited
