"""Unit tests for the baseline matchers (Table III re-implementations)."""

import pytest

from repro.baselines import (
    ALL_BASELINES,
    BacktrackingMatcher,
    FailingSetMatcher,
    GraphflowMatcher,
    SymmetryBreakingMatcher,
    VF2Matcher,
    WCOJMatcher,
    symmetry_restrictions,
)
from repro.core import CSCE, Variant
from repro.errors import VariantError
from repro.graph import Graph, count_automorphisms

from conftest import brute_count, make_random_graph


@pytest.fixture(scope="module")
def labeled_graph():
    return make_random_graph(14, 30, num_labels=3, seed=21)


@pytest.fixture(scope="module")
def unlabeled_graph():
    return make_random_graph(12, 26, seed=22)


def small_patterns(graph, sizes=(3, 4), seeds=(0, 1)):
    from repro.graph.sampling import sample_pattern

    patterns = []
    for size in sizes:
        for seed in seeds:
            try:
                patterns.append(sample_pattern(graph, size, rng=seed))
            except Exception:
                pass
    return patterns


class TestBacktracking:
    @pytest.mark.parametrize(
        "variant", ["edge_induced", "vertex_induced", "homomorphic"]
    )
    def test_matches_brute_force(self, labeled_graph, variant):
        matcher = BacktrackingMatcher(labeled_graph)
        for p in small_patterns(labeled_graph):
            assert matcher.count(p, variant) == brute_count(
                labeled_graph, p, variant
            )

    def test_enumeration_mappings_valid(self, labeled_graph):
        matcher = BacktrackingMatcher(labeled_graph)
        p = small_patterns(labeled_graph)[0]
        result = matcher.match(p, "edge_induced")
        for m in result.embeddings:
            assert len(set(m.values())) == p.num_vertices

    def test_max_embeddings(self, labeled_graph):
        matcher = BacktrackingMatcher(labeled_graph)
        p = small_patterns(labeled_graph)[0]
        full = matcher.count(p, "edge_induced")
        if full > 2:
            result = matcher.match(p, "edge_induced", max_embeddings=2)
            assert result.count == 2 and result.truncated

    def test_restrictions(self, unlabeled_graph):
        tri = Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        matcher = BacktrackingMatcher(unlabeled_graph)
        full = matcher.count(tri, "edge_induced")
        restricted = matcher.count(
            tri, "edge_induced", restrictions=[(0, 1), (1, 2)]
        )
        assert restricted * 6 == full


class TestVF2:
    def test_matches_brute_force(self, labeled_graph):
        matcher = VF2Matcher(labeled_graph)
        for p in small_patterns(labeled_graph):
            assert matcher.count(p, "vertex_induced") == brute_count(
                labeled_graph, p, "vertex_induced"
            )

    def test_rejects_edge_induced(self, labeled_graph):
        matcher = VF2Matcher(labeled_graph)
        p = small_patterns(labeled_graph)[0]
        with pytest.raises(VariantError):
            matcher.count(p, "edge_induced")

    def test_directed_graphs(self):
        g = make_random_graph(10, 20, num_labels=2, directed=True, seed=5)
        p = Graph()
        p.add_vertices([0, 1])
        p.add_edge(0, 1, directed=True)
        if brute_count(g, p, "vertex_induced") != VF2Matcher(g).count(
            p, "vertex_induced"
        ):
            pytest.fail("directed VF2 mismatch")


class TestWCOJ:
    @pytest.mark.parametrize("variant", ["edge_induced", "homomorphic"])
    def test_matches_brute_force(self, labeled_graph, variant):
        matcher = WCOJMatcher(labeled_graph)
        for p in small_patterns(labeled_graph):
            assert matcher.count(p, variant) == brute_count(
                labeled_graph, p, variant
            )

    def test_rejects_vertex_induced(self, labeled_graph):
        with pytest.raises(VariantError):
            WCOJMatcher(labeled_graph).count(
                small_patterns(labeled_graph)[0], "vertex_induced"
            )

    def test_graphflow_homomorphic_directed(self):
        g = make_random_graph(10, 25, num_labels=2, directed=True, edge_labels=2, seed=6)
        matcher = GraphflowMatcher(g)
        p = Graph()
        p.add_vertices([0, 1, 0])
        p.add_edge(0, 1, label=0, directed=True)
        p.add_edge(1, 2, label=1, directed=True)
        try:
            got = matcher.count(p, "homomorphic")
        except VariantError:
            pytest.skip("pattern labels unsupported")
        assert got == brute_count(g, p, "homomorphic")

    def test_graphflow_rejects_undirected(self, labeled_graph):
        with pytest.raises(VariantError):
            GraphflowMatcher(labeled_graph).count(
                small_patterns(labeled_graph)[0], "homomorphic"
            )


class TestFailingSet:
    def test_matches_brute_force(self, labeled_graph):
        matcher = FailingSetMatcher(labeled_graph)
        for p in small_patterns(labeled_graph):
            assert matcher.count(p, "edge_induced") == brute_count(
                labeled_graph, p, "edge_induced"
            )

    def test_agrees_with_csce_on_larger_patterns(self, labeled_graph):
        engine = CSCE(labeled_graph)
        matcher = FailingSetMatcher(labeled_graph)
        for p in small_patterns(labeled_graph, sizes=(5, 6), seeds=(2,)):
            assert matcher.count(p, "edge_induced") == engine.count(
                p, "edge_induced"
            )

    def test_rejects_homomorphic(self, labeled_graph):
        with pytest.raises(VariantError):
            FailingSetMatcher(labeled_graph).count(
                small_patterns(labeled_graph)[0], "homomorphic"
            )


class TestSymmetryBreaking:
    @pytest.mark.parametrize(
        "edges,n",
        [
            ([(0, 1), (1, 2), (0, 2)], 3),  # triangle
            ([(0, 1), (1, 2), (2, 3), (3, 0)], 4),  # C4
            ([(0, i) for i in range(1, 5)], 5),  # star
            ([(0, 1), (1, 2), (2, 3)], 4),  # path
            ([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)], 4),  # K4
        ],
    )
    def test_count_matches_unbroken(self, unlabeled_graph, edges, n):
        pattern = Graph.from_edges(n, edges)
        expected = CSCE(unlabeled_graph).match(
            pattern, "edge_induced", count_only=True
        ).count
        got = SymmetryBreakingMatcher(unlabeled_graph).match(pattern)
        assert got.count == expected
        assert got.stats["automorphisms"] == count_automorphisms(pattern)

    def test_restrictions_break_all_symmetry(self):
        c4 = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        restrictions, group = symmetry_restrictions(c4)
        assert group == 8
        # Enough restrictions to pin the group to the identity.
        assert len(restrictions) >= 2

    def test_rejects_labels(self, labeled_graph):
        tri = Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        with pytest.raises(VariantError):
            SymmetryBreakingMatcher(labeled_graph).match(tri)

    def test_rejects_enumeration(self, unlabeled_graph):
        tri = Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        with pytest.raises(VariantError):
            SymmetryBreakingMatcher(unlabeled_graph).match(tri, count_only=False)

    def test_records_symmetry_seconds(self, unlabeled_graph):
        tri = Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        result = SymmetryBreakingMatcher(unlabeled_graph).match(tri)
        assert result.stats["symmetry_seconds"] >= 0


class TestCapabilities:
    def test_capability_rows_render(self):
        rows = [cls.capability_row() for cls in ALL_BASELINES]
        names = {row["Algorithm"] for row in rows}
        assert names == {
            "GraphPi",
            "Graphflow",
            "RI-Backtracking",
            "RapidMatch",
            "VEQ",
            "VF3",
        }

    def test_table3_shape(self):
        row = VF2Matcher.capability_row()
        assert row["Variant"] == "V"
        assert row["Edge Direction"] == "U and D"
        assert row["Pattern Size"] == "Up to 2000"

    def test_unsupported_variant_raises(self, unlabeled_graph):
        tri = Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        with pytest.raises(VariantError):
            VF2Matcher(unlabeled_graph).count(tri, "homomorphic")
