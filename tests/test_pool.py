"""Multi-process worker pool: portable work units, exact merged counts.

The hard invariant under test everywhere here: for every (pattern,
variant, workers) configuration — including under injected chaos (worker
SIGKILL, cancel mid-steal) — the pool's merged count equals the
single-process count exactly. The work-unit layer is additionally tested
in isolation: root-range sharding and frame-stack splitting partition the
search space, so executing the pieces and summing reproduces the whole.
"""

from __future__ import annotations

import json
import os
import signal

import pytest

from repro.core.csce import CSCE
from repro.engine.checkpoint import (
    CheckpointSink,
    load_checkpoint,
    load_checkpoint_dir,
    worker_scoped_path,
)
from repro.engine.executor import Runtime, SearchState, count_capped, specialize
from repro.engine.governor import Budget, CancelToken, ResourceGovernor
from repro.engine.pool import (
    _STOP_SEVERITY,
    PoolMonitor,
    execute_parallel,
)
from repro.engine.results import MatchOptions
from repro.engine.workunit import (
    make_root_units,
    root_candidates,
    split_search_state,
)
from repro.errors import CheckpointError, PoolError
from repro.graph.patterns import CATALOG
from repro.obs import Observation, build_run_report, validate_run_report
from repro.testing import faults

from conftest import make_random_graph

VARIANTS = ("homomorphic", "edge_induced", "vertex_induced")


@pytest.fixture(scope="module")
def graph():
    return make_random_graph(150, 900, num_labels=0, seed=11)


@pytest.fixture(scope="module")
def engine(graph):
    return CSCE(graph)


def compiled(engine, pattern, variant, **options):
    opts = MatchOptions(count_only=True, **options)
    physical = engine.session.compile(pattern, variant).physical
    return specialize(physical, opts), opts


# ---------------------------------------------------------------------------
# Work units: sharding partitions the search space exactly
# ---------------------------------------------------------------------------
class TestWorkUnits:
    def test_root_units_partition_root_candidates(self, engine):
        physical, _ = compiled(engine, CATALOG["path4"](), "homomorphic")
        roots = root_candidates(physical)
        assert roots
        units = make_root_units(physical, 4)
        chunks = [u["values"][0] for u in units]
        assert [v for chunk in chunks for v in chunk] == roots
        sizes = sorted(len(c) for c in chunks)
        assert sizes[-1] - sizes[0] <= 1

    def test_more_shards_than_roots_collapses(self, engine):
        physical, _ = compiled(engine, CATALOG["triangle"](), "homomorphic")
        roots = root_candidates(physical)
        units = make_root_units(physical, len(roots) + 50)
        assert len(units) == len(roots)
        assert all(len(u["values"][0]) == 1 for u in units)

    def test_invalid_shard_count_rejected(self, engine):
        physical, _ = compiled(engine, CATALOG["triangle"](), "homomorphic")
        with pytest.raises(ValueError):
            make_root_units(physical, 0)

    def test_executing_units_sums_to_sequential(self, engine):
        pattern = CATALOG["square"]()
        seq = engine.match(pattern, "edge_induced", count_only=True)
        physical, opts = compiled(engine, pattern, "edge_induced")
        total = 0
        for payload in make_root_units(physical, 5):
            runtime = Runtime(physical, opts)
            try:
                total += count_capped(
                    physical, runtime, SearchState.from_payload(payload)
                )
            finally:
                runtime.release()
        assert total == seq.count

    def test_split_midway_conserves_count(self, engine):
        # Stop a run midway, split its frame stack, finish both halves:
        # kept + donated + already-emitted must equal the full count.
        pattern = CATALOG["path4"]()
        seq = engine.match(pattern, "homomorphic", count_only=True)
        physical, opts = compiled(
            engine, pattern, "homomorphic",
            max_embeddings=seq.count // 3,
        )
        state = SearchState.fresh(len(physical.ops))
        runtime = Runtime(physical, opts)
        try:
            partial = count_capped(physical, runtime, state)
        finally:
            runtime.release()
        assert runtime.stop_reason == "embedding_limit"
        op_vertices = tuple(op.u for op in physical.ops)
        donated = split_search_state(state, True, op_vertices)
        assert donated is not None
        finish_physical, finish_opts = compiled(
            engine, pattern, "homomorphic"
        )
        total = partial
        for payload in (state.to_payload(), donated):
            rt = Runtime(finish_physical, finish_opts)
            try:
                total += count_capped(
                    finish_physical, rt, SearchState.from_payload(payload)
                )
            finally:
                rt.release()
        assert total == seq.count

    def test_split_fresh_state_returns_none(self, engine):
        physical, _ = compiled(engine, CATALOG["triangle"](), "homomorphic")
        state = SearchState.fresh(len(physical.ops))
        op_vertices = tuple(op.u for op in physical.ops)
        assert split_search_state(state, True, op_vertices) is None

    def test_min_remaining_guard(self, engine):
        physical, _ = compiled(engine, CATALOG["triangle"](), "homomorphic")
        state = SearchState.fresh(len(physical.ops))
        op_vertices = tuple(op.u for op in physical.ops)
        with pytest.raises(ValueError):
            split_search_state(state, True, op_vertices, min_remaining=1)


# ---------------------------------------------------------------------------
# Exact-count parity: pool == sequential
# ---------------------------------------------------------------------------
class TestParity:
    @pytest.mark.parametrize("variant", VARIANTS)
    @pytest.mark.parametrize("name", ["triangle", "path4", "square"])
    def test_two_workers_exact(self, engine, name, variant):
        pattern = CATALOG[name]()
        seq = engine.match(pattern, variant, count_only=True)
        par = engine.match(pattern, variant, count_only=True, workers=2)
        assert par.count == seq.count
        assert par.shards is not None
        assert sum(par.shards["counts"]) == par.count

    def test_four_workers_exact(self, engine):
        pattern = CATALOG["star4"]()
        seq = engine.match(pattern, "homomorphic", count_only=True)
        par = engine.match(pattern, "homomorphic", count_only=True,
                           workers=4)
        assert par.count == seq.count
        assert par.shards["count"] == len(par.shards["counts"])

    def test_restrictions_and_seed_parity(self, engine):
        from repro.baselines.symmetry import symmetry_restrictions

        pattern = CATALOG["triangle"]()
        restrictions, _ = symmetry_restrictions(pattern)
        seq = engine.match(pattern, "edge_induced", count_only=True,
                           restrictions=restrictions)
        par = engine.match(pattern, "edge_induced", count_only=True,
                           restrictions=restrictions, workers=2)
        assert par.count == seq.count

    def test_work_stealing_exact(self, engine):
        # A single oversized root unit forces the pool to rebalance by
        # splitting live frame stacks; the merged count stays exact.
        pattern = CATALOG["path4"]()
        seq = engine.match(pattern, "homomorphic", count_only=True)
        physical, opts = compiled(engine, pattern, "homomorphic")
        opts.workers = 4
        events = []
        result = execute_parallel(
            physical, opts,
            initial_units=make_root_units(physical, 1),
            on_event=lambda kind, msg: events.append(kind),
        )
        assert result.count == seq.count
        assert sum(result.shards["counts"]) == seq.count

    def test_enumeration_mode_rejected(self, engine):
        with pytest.raises(PoolError):
            engine.match(CATALOG["triangle"](), "edge_induced",
                         count_only=False, workers=2)


# ---------------------------------------------------------------------------
# Chaos: worker death and cancel mid-steal stay exact
# ---------------------------------------------------------------------------
class TestChaos:
    def test_worker_sigkill_recovers_exact(self, engine):
        pattern = CATALOG["path4"]()
        seq = engine.match(pattern, "homomorphic", count_only=True)

        def kill_w1(rule, site, ctx):
            if os.environ.get("REPRO_WORKER") == "w1":
                os.kill(os.getpid(), signal.SIGKILL)

        injector = faults.FaultInjector(seed=1)
        injector.on("engine.tick", kill_w1, after=100, times=1)
        physical, opts = compiled(engine, pattern, "homomorphic")
        opts.workers = 2
        with injector.install():
            result = execute_parallel(physical, opts)
        assert result.count == seq.count
        assert result.stop_reason is None

    def test_cluster_read_fault_in_worker_is_requeued(self, engine):
        # A transient exception inside a worker fails the unit; the pool
        # re-runs it (attempts < MAX) and the final count stays exact.
        pattern = CATALOG["triangle"]()
        seq = engine.match(pattern, "homomorphic", count_only=True)

        fired = {"n": 0}

        def boom(rule, site, ctx):
            if os.environ.get("REPRO_WORKER"):
                fired["n"] += 1
                raise RuntimeError("injected tick fault")

        injector = faults.FaultInjector(seed=3)
        injector.on("engine.tick", boom, after=2, times=1)
        physical, opts = compiled(engine, pattern, "homomorphic")
        opts.workers = 2
        with injector.install():
            result = execute_parallel(physical, opts)
        assert result.count == seq.count

    def test_cancel_mid_steal_drains_cleanly(self, engine):
        pattern = CATALOG["path4"]()
        seq = engine.match(pattern, "homomorphic", count_only=True)
        cancel = CancelToken()
        governor = ResourceGovernor(Budget(), cancel=cancel)
        physical, opts = compiled(engine, pattern, "homomorphic")
        opts.workers = 4
        opts.governor = governor

        def on_event(kind, msg):
            if kind == "split":
                cancel.trip("mid-steal")

        result = execute_parallel(
            physical, opts,
            initial_units=make_root_units(physical, 1),
            on_event=on_event,
        )
        # Cancelled (if a steal happened in time) or complete — either
        # way the partial count is a valid prefix of the search.
        assert result.count <= seq.count
        if result.stop_reason is not None:
            assert result.stop_reason == "cancelled"
        else:
            assert result.count == seq.count

    def test_embedding_cap_stops_pool(self, engine):
        pattern = CATALOG["path4"]()
        seq = engine.match(pattern, "homomorphic", count_only=True)
        cap = max(1, seq.count // 4)
        par = engine.match(pattern, "homomorphic", count_only=True,
                           workers=2, max_embeddings=cap)
        assert par.stop_reason == "embedding_limit"
        assert par.truncated
        # Cooperative cap: at least the cap, never the full count (each
        # in-flight unit may finish its last banked batch).
        assert cap <= par.count <= seq.count

    def test_stop_severity_order_is_stable(self):
        # The severity ladder is the documented merge tie-break; keep it
        # a module-level immutable in the fork entrypoint.
        assert _STOP_SEVERITY == (
            "embedding_limit", "time_limit", "memory_limit", "cancelled",
        )
        assert isinstance(_STOP_SEVERITY, tuple)


# ---------------------------------------------------------------------------
# Checkpoint sharding and pool resume
# ---------------------------------------------------------------------------
class TestPoolCheckpoints:
    def test_worker_scoped_path(self):
        assert worker_scoped_path("cp.json", 3).endswith("cp-w3.json")
        assert worker_scoped_path("cp.json", "aux").endswith("cp-aux.json")
        assert worker_scoped_path("cp", 0).endswith("cp-w0.json")

    def test_sink_scopes_filename_per_worker(self, engine, tmp_path):
        pattern = CATALOG["triangle"]()
        base = tmp_path / "cp.json"
        sink = CheckpointSink(base, engine.store, pattern,
                              "edge_induced", "csce", worker=2)
        assert str(sink.path).endswith("cp-w2.json")

    def test_checkpoint_resume_round_trip(self, engine, tmp_path):
        pattern = CATALOG["square"]()
        seq = engine.match(pattern, "homomorphic", count_only=True)
        cp_dir = tmp_path / "shards"
        partial = engine.match(
            pattern, "homomorphic", count_only=True, workers=2,
            max_embeddings=max(1, seq.count // 3),
            pool_checkpoint_dir=str(cp_dir),
        )
        assert partial.stop_reason == "embedding_limit"
        files = sorted(os.listdir(cp_dir))
        assert files and all(f.startswith("shard-") for f in files)
        resumed = engine.resume_pool(str(cp_dir), workers=2,
                                     max_embeddings=None)
        assert resumed.count == seq.count

    def test_load_checkpoint_dir_rejects_empty(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint_dir(tmp_path)

    def test_load_checkpoint_dir_rejects_mixed_queries(
        self, engine, tmp_path
    ):
        pattern = CATALOG["square"]()
        seq = engine.match(pattern, "homomorphic", count_only=True)
        cp_dir = tmp_path / "shards"
        engine.match(
            pattern, "homomorphic", count_only=True, workers=2,
            max_embeddings=max(1, seq.count // 3),
            pool_checkpoint_dir=str(cp_dir),
        )
        shard = sorted(cp_dir.glob("shard-*.json"))[0]
        doc = json.loads(shard.read_text())
        doc["query"]["variant"] = "edge_induced"
        shard.write_text(json.dumps(doc))
        with pytest.raises(CheckpointError):
            load_checkpoint_dir(cp_dir)

    def test_shard_checkpoints_are_standard_documents(
        self, engine, tmp_path
    ):
        # Every shard is an ordinary v1 repro-checkpoint, individually
        # loadable by the single-stream reader.
        pattern = CATALOG["square"]()
        seq = engine.match(pattern, "homomorphic", count_only=True)
        cp_dir = tmp_path / "shards"
        engine.match(
            pattern, "homomorphic", count_only=True, workers=2,
            max_embeddings=max(1, seq.count // 3),
            pool_checkpoint_dir=str(cp_dir),
        )
        for shard in sorted(cp_dir.glob("shard-*.json")):
            doc = load_checkpoint(shard)
            assert doc["format"] == "repro-checkpoint"


# ---------------------------------------------------------------------------
# Observability: merged reports, monitor rows, progress
# ---------------------------------------------------------------------------
class TestPoolObservability:
    def test_result_carries_exact_shards_block(self, engine):
        pattern = CATALOG["square"]()
        result = engine.match(pattern, "homomorphic", count_only=True,
                              workers=2)
        block = result.shards
        assert block["count"] == len(block["workers"])
        assert len(block["counts"]) == block["count"]
        assert sum(block["counts"]) == result.count

    def test_run_report_includes_shards_and_validates(self, engine):
        pattern = CATALOG["square"]()
        obs = Observation(trace=True)
        result = engine.match(pattern, "homomorphic", count_only=True,
                              workers=2, obs=obs)
        obs.finish(result)
        report = build_run_report(result, engine="CSCE", obs=obs)
        validate_run_report(report)
        assert report["shards"]["counts"] == result.shards["counts"]

    def test_monitor_rows_and_progress(self, engine):
        pattern = CATALOG["square"]()
        monitor = PoolMonitor()
        obs = Observation(trace=False, heartbeat_interval=0.01)
        result = engine.match(pattern, "homomorphic", count_only=True,
                              workers=2, obs=obs, pool_monitor=monitor)
        rows = monitor.worker_rows()
        assert {row["worker"] for row in rows} == {"w0", "w1"}
        for row in rows:
            assert set(row) >= {"worker", "pid", "state", "units",
                                "emitted", "nodes"}
        assert monitor.runtime.emitted == result.count
        assert result.progress is not None
        assert result.progress["percent"] == 100.0

    def test_merged_stats_match_sequential_keys(self, engine):
        pattern = CATALOG["triangle"]()
        seq = engine.match(pattern, "homomorphic", count_only=True)
        par = engine.match(pattern, "homomorphic", count_only=True,
                           workers=2)
        # Unified stats contract: same key set on every execution path.
        assert set(par.stats) == set(seq.stats)
        assert par.stats["nodes"] > 0
