"""Unit tests for the general motif-graph builder."""

import pytest

from repro.analysis import build_motif_graph
from repro.core import CSCE
from repro.errors import VariantError
from repro.graph import Graph, count_automorphisms
from repro.graph.patterns import by_name, path

from conftest import make_random_graph


@pytest.fixture(scope="module")
def data_graph():
    return make_random_graph(16, 40, seed=66)


class TestInstanceCounting:
    def test_triangle_instances_deduplicate_automorphisms(self, data_graph):
        result = build_motif_graph(data_graph, by_name("triangle"))
        raw = CSCE(data_graph).count(by_name("triangle"))
        assert result.automorphisms == 6
        assert result.num_instances == raw // 6

    def test_path_instances(self, data_graph):
        result = build_motif_graph(data_graph, path(3))
        # Ground truth: dedupe the *vertex sets* of a full enumeration
        # (distinct P3 mappings can share a vertex set non-automorphically
        # when the three vertices form a triangle).
        full = CSCE(data_graph).match(path(3))
        expected = {frozenset(m.values()) for m in full.embeddings}
        assert result.num_instances == len(expected)

    def test_asymmetric_pattern_no_restrictions(self, data_graph):
        # The "paw": triangle plus pendant (trivial automorphism group).
        paw = Graph.from_edges(4, [(0, 1), (1, 2), (0, 2), (0, 3)])
        assert count_automorphisms(paw) == 2
        result = build_motif_graph(data_graph, paw)
        assert result.automorphisms == 2

    def test_homomorphic_rejected(self, data_graph):
        with pytest.raises(VariantError):
            build_motif_graph(data_graph, path(3), variant="homomorphic")


class TestWeights:
    def test_weights_symmetric(self, data_graph):
        result = build_motif_graph(data_graph, by_name("triangle"))
        for a, nbrs in result.weights.items():
            for b, w in nbrs.items():
                assert result.weight(b, a) == w

    def test_weight_counts_co_membership(self):
        # Exactly one triangle: every pair inside weighs 1, outside 0.
        g = Graph.from_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3)])
        result = build_motif_graph(g, by_name("triangle"))
        assert result.num_instances == 1
        assert result.weight(0, 1) == 1.0
        assert result.weight(2, 3) == 0.0

    def test_top_pairs_sorted(self, data_graph):
        result = build_motif_graph(data_graph, by_name("triangle"))
        top = result.top_pairs(5)
        weights = [w for _, _, w in top]
        assert weights == sorted(weights, reverse=True)

    def test_vertex_induced_variant(self, data_graph):
        induced = build_motif_graph(
            data_graph, by_name("square"), variant="vertex_induced"
        )
        loose = build_motif_graph(data_graph, by_name("square"))
        assert induced.num_instances <= loose.num_instances


class TestEngineReuse:
    def test_shared_engine(self, data_graph):
        engine = CSCE(data_graph)
        a = build_motif_graph(data_graph, by_name("triangle"), engine=engine)
        b = build_motif_graph(data_graph, by_name("triangle"))
        assert a.num_instances == b.num_instances
