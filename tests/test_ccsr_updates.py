"""Unit tests for incremental CCSR updates."""

import random

import pytest

from repro.ccsr import CCSRStore
from repro.core import CSCE
from repro.errors import GraphError
from repro.graph import Graph

from conftest import make_fig1_graph, make_random_graph


class TestInsertVertex:
    def test_insert_updates_metadata(self):
        store = CCSRStore(make_fig1_graph())
        v = store.insert_vertex("A")
        assert v == 10
        assert store.num_vertices == 11
        assert store.label_frequency["A"] == 4

    def test_decompressed_clusters_resize(self):
        store = CCSRStore(make_fig1_graph())
        for cluster in store.clusters.values():
            cluster.decompress()
        v = store.insert_vertex("B")
        # Neighbor access for the new vertex must work after re-decompress.
        for cluster in store.clusters.values():
            cluster.decompress()
            assert cluster.successors(v).shape == (0,)


class TestInsertEdge:
    def test_insert_into_existing_cluster(self):
        store = CCSRStore(make_fig1_graph())
        before = store.num_edges
        store.insert_edge(7, 4, directed=True)  # another A -> B edge
        assert store.num_edges == before + 1
        cluster = store.cluster_for("A", "B", None, True)
        assert cluster.contains_edge(7, 4)

    def test_insert_creates_new_cluster(self):
        store = CCSRStore(make_fig1_graph())
        before = store.num_clusters
        store.insert_edge(1, 2)  # B -- C: no such cluster yet
        assert store.num_clusters == before + 1
        assert len(store.clusters_connecting("B", "C")) == 1

    def test_duplicate_rejected(self):
        store = CCSRStore(make_fig1_graph())
        with pytest.raises(GraphError, match="duplicate"):
            store.insert_edge(0, 1, directed=True)

    def test_undirected_duplicate_rejected_reversed(self):
        store = CCSRStore(make_fig1_graph())
        with pytest.raises(GraphError, match="duplicate"):
            store.insert_edge(2, 0)  # v3 -- v1 already stored as (0, 2)

    def test_self_loop_rejected(self):
        store = CCSRStore(make_fig1_graph())
        with pytest.raises(GraphError, match="self-loop"):
            store.insert_edge(3, 3)

    def test_missing_vertex_rejected(self):
        store = CCSRStore(make_fig1_graph())
        with pytest.raises(GraphError, match="missing vertex"):
            store.insert_edge(0, 99)


class TestRemoveEdge:
    def test_remove_directed(self):
        store = CCSRStore(make_fig1_graph())
        store.remove_edge(0, 1, directed=True)
        cluster = store.cluster_for("A", "B", None, True)
        assert not cluster.contains_edge(0, 1)
        assert cluster.contains_edge(0, 5)

    def test_remove_undirected_either_orientation(self):
        store = CCSRStore(make_fig1_graph())
        store.remove_edge(2, 0)  # stored as (0, 2)
        cluster = store.cluster_for("A", "C", None, False)
        assert not cluster.contains_edge(0, 2)

    def test_last_edge_drops_cluster(self):
        g = Graph()
        g.add_vertices(["X", "Y"])
        g.add_edge(0, 1)
        store = CCSRStore(g)
        store.remove_edge(0, 1)
        assert store.num_clusters == 0
        assert store.clusters_connecting("X", "Y") == []

    def test_remove_missing_edge(self):
        store = CCSRStore(make_fig1_graph())
        with pytest.raises(GraphError, match="does not exist"):
            store.remove_edge(1, 2)


class TestUpdateEquivalence:
    """A randomly updated store must behave exactly like a store built
    from scratch on the final graph — the key maintenance invariant."""

    def test_random_update_sequence(self):
        rng = random.Random(5)
        base = make_random_graph(12, 20, num_labels=2, seed=30)
        store = CCSRStore(base)
        current = base.copy()
        for _ in range(25):
            if rng.random() < 0.5 and current.num_edges > 5:
                edge = rng.choice(list(current.edges()))
                store.remove_edge(edge.src, edge.dst, edge.label, edge.directed)
                rebuilt = Graph(name=current.name)
                rebuilt.add_vertices(current.vertex_labels)
                for e in current.edges():
                    if e != edge:
                        rebuilt.add_edge(e.src, e.dst, e.label, e.directed)
                current = rebuilt
            else:
                a = rng.randrange(current.num_vertices)
                b = rng.randrange(current.num_vertices)
                directed = rng.random() < 0.5
                try:
                    current.add_edge(a, b, directed=directed)
                except GraphError:
                    continue
                store.insert_edge(a, b, directed=directed)
        assert store.to_graph() == current
        assert store.num_edges == current.num_edges
        assert store.total_column_entries() == 2 * current.num_edges

    def test_matching_after_updates(self):
        g = make_random_graph(14, 25, num_labels=2, seed=31)
        store = CCSRStore(g)
        # Densify one neighborhood, then remove a few edges.
        added = []
        for b in (5, 6, 7):
            try:
                store.insert_edge(0, b)
                added.append((0, b))
            except GraphError:
                pass
        final = store.to_graph()
        fresh = CSCE(final)
        updated = CSCE(store)
        from repro.graph.patterns import by_name

        for variant in ("edge_induced", "vertex_induced", "homomorphic"):
            assert updated.count(by_name("triangle"), variant) == fresh.count(
                by_name("triangle"), variant
            )
