"""Unit tests for the exception hierarchy."""

import pytest

from repro.errors import (
    EmbeddingLimitExceeded,
    FormatError,
    GraphError,
    LimitExceeded,
    PlanError,
    ReproError,
    TimeLimitExceeded,
    VariantError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [GraphError, FormatError, PlanError, VariantError, LimitExceeded],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_limit_subtypes(self):
        assert issubclass(TimeLimitExceeded, LimitExceeded)
        assert issubclass(EmbeddingLimitExceeded, LimitExceeded)

    def test_limit_carries_partial_count(self):
        exc = TimeLimitExceeded("late", partial_count=17)
        assert exc.partial_count == 17

    def test_format_error_line_number(self):
        exc = FormatError("bad token", line_number=4)
        assert "line 4" in str(exc)
        assert exc.line_number == 4

    def test_format_error_without_line(self):
        exc = FormatError("bad header")
        assert exc.line_number is None

    def test_single_except_clause_catches_everything(self):
        for exc_type in (GraphError, PlanError, VariantError):
            with pytest.raises(ReproError):
                raise exc_type("boom")
