"""Unit tests for graph algorithms (degrees, components, automorphisms)."""

from repro.graph import Graph
from repro.graph.algorithms import (
    average_degree,
    connected_components,
    count_automorphisms,
    degree_statistics,
    is_connected,
    iter_automorphisms,
    label_frequencies,
)


class TestDegreeStatistics:
    def test_triangle(self, triangle):
        stats = degree_statistics(triangle)
        assert stats.average_degree == 2.0
        assert stats.max_degree == 2

    def test_directed_in_out(self):
        g = Graph.from_edges(3, [(0, 2), (1, 2)], directed=True)
        stats = degree_statistics(g)
        assert stats.max_in_degree == 2
        assert stats.max_out_degree == 1

    def test_empty_graph(self):
        stats = degree_statistics(Graph())
        assert stats.average_degree == 0.0

    def test_average_degree(self, path3):
        assert average_degree(path3) == (1 + 2 + 1) / 3


class TestComponents:
    def test_single_component(self, triangle):
        assert connected_components(triangle) == [[0, 1, 2]]
        assert is_connected(triangle)

    def test_two_components(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        assert connected_components(g) == [[0, 1], [2, 3]]
        assert not is_connected(g)

    def test_directed_edges_connect_components(self):
        g = Graph.from_edges(2, [(0, 1)], directed=True)
        assert is_connected(g)

    def test_empty_graph_connected(self):
        assert is_connected(Graph())

    def test_isolated_vertices(self):
        g = Graph()
        g.add_vertices([0, 0])
        assert len(connected_components(g)) == 2


class TestLabelFrequencies:
    def test_counts(self, fig1_graph):
        freq = label_frequencies(fig1_graph)
        assert freq["A"] == 3
        assert freq["B"] == 4
        assert freq["C"] == 2
        assert freq["D"] == 1


class TestAutomorphisms:
    def test_triangle_has_six(self, triangle):
        assert count_automorphisms(triangle) == 6

    def test_path_has_two(self, path3):
        assert count_automorphisms(path3) == 2

    def test_labels_break_symmetry(self):
        p = Graph.from_edges(3, [(0, 1), (1, 2)], vertex_labels=["A", "B", "C"])
        assert count_automorphisms(p) == 1

    def test_directed_cycle(self):
        c3 = Graph.from_edges(3, [(0, 1), (1, 2), (2, 0)], directed=True)
        assert count_automorphisms(c3) == 3  # rotations only, no reflections

    def test_square(self):
        c4 = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert count_automorphisms(c4) == 8  # dihedral group D4

    def test_clique(self):
        k4 = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
        assert count_automorphisms(k4) == 24

    def test_star(self):
        star = Graph.from_edges(5, [(0, i) for i in range(1, 5)])
        assert count_automorphisms(star) == 24  # 4! leaf permutations

    def test_mappings_are_valid(self, triangle):
        for mapping in iter_automorphisms(triangle):
            assert sorted(mapping) == [0, 1, 2]
            assert sorted(mapping.values()) == [0, 1, 2]

    def test_edge_labels_break_symmetry(self):
        g = Graph()
        g.add_vertices([0, 0, 0])
        g.add_edge(0, 1, label="x")
        g.add_edge(1, 2, label="y")
        assert count_automorphisms(g) == 1

    def test_paper_s3_example(self, fig1_graph):
        """Section II: S3 induced from {u1, u6, u8} is automorphic under two
        mappings (the A--D--A path's identity and reflection)."""
        s3 = fig1_graph.induced_subgraph([0, 6, 7])  # A, D, A path
        assert count_automorphisms(s3) == 2
