"""Unit tests for pattern sampling."""

import pytest

from repro.errors import GraphError
from repro.graph import is_connected
from repro.graph.generators import power_law_graph
from repro.graph.sampling import (
    is_dense_pattern,
    pattern_density,
    sample_pattern,
    sample_pattern_suite,
)
from repro.graph.model import Graph


@pytest.fixture(scope="module")
def data_graph():
    return power_law_graph(300, 4, num_labels=6, seed=11)


class TestDensity:
    def test_density_formula(self, data_graph):
        p = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert pattern_density(p) == pytest.approx(1.5)
        assert not is_dense_pattern(p)

    def test_clique_is_dense(self):
        p = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
        assert is_dense_pattern(p)

    def test_empty_pattern_density(self):
        assert pattern_density(Graph()) == 0.0


class TestSamplePattern:
    def test_size_and_connectivity(self, data_graph):
        p = sample_pattern(data_graph, 8, rng=0)
        assert p.num_vertices == 8
        assert is_connected(p)

    def test_labels_preserved(self, data_graph):
        p = sample_pattern(data_graph, 6, rng=1)
        assert set(p.vertex_labels) <= set(data_graph.vertex_labels)

    def test_dense_style(self, data_graph):
        p = sample_pattern(data_graph, 8, rng=2, style="dense")
        assert is_dense_pattern(p)

    def test_sparse_style(self, data_graph):
        p = sample_pattern(data_graph, 10, rng=3, style="sparse")
        assert pattern_density(p) <= 2.0
        assert is_connected(p)

    def test_deterministic_with_seed(self, data_graph):
        a = sample_pattern(data_graph, 7, rng=42)
        b = sample_pattern(data_graph, 7, rng=42)
        assert a == b

    def test_sampled_pattern_has_embedding(self, data_graph):
        from repro.core.csce import CSCE

        p = sample_pattern(data_graph, 5, rng=4)
        assert CSCE(data_graph).count(p, "vertex_induced") >= 1

    def test_sparse_pattern_has_edge_induced_embedding(self, data_graph):
        from repro.core.csce import CSCE

        p = sample_pattern(data_graph, 6, rng=5, style="sparse")
        assert CSCE(data_graph).count(p, "edge_induced") >= 1

    def test_size_validation(self, data_graph):
        with pytest.raises(GraphError):
            sample_pattern(data_graph, 1)
        with pytest.raises(GraphError):
            sample_pattern(data_graph, data_graph.num_vertices + 1)

    def test_style_validation(self, data_graph):
        with pytest.raises(GraphError):
            sample_pattern(data_graph, 4, style="bogus")


class TestSuite:
    def test_suite_shape(self, data_graph):
        suite = sample_pattern_suite(data_graph, [4, 6], per_size=3, seed=0)
        assert sorted(suite) == [4, 6]
        assert all(len(patterns) == 3 for patterns in suite.values())
        assert all(p.num_vertices == 6 for p in suite[6])
