"""Unit tests for the execution engine (enumeration, limits, options)."""

import pytest

from repro.core import CSCE, MatchOptions, Variant, execute
from repro.graph import Graph

from conftest import brute_count


@pytest.fixture
def square_engine(square_with_diagonal):
    return CSCE(square_with_diagonal)


class TestEnumeration:
    def test_embeddings_are_valid_mappings(self, square_with_diagonal, path3):
        engine = CSCE(square_with_diagonal)
        result = engine.match(path3, "edge_induced")
        assert result.count == len(result.embeddings)
        for embedding in result.embeddings:
            assert sorted(embedding) == [0, 1, 2]
            # every pattern edge maps to a data edge
            for e in path3.edges():
                assert square_with_diagonal.has_edge(
                    embedding[e.src], embedding[e.dst]
                )

    def test_embeddings_distinct(self, square_engine, path3):
        result = square_engine.match(path3, "edge_induced")
        seen = {tuple(sorted(m.items())) for m in result.embeddings}
        assert len(seen) == result.count

    def test_injective_variants_have_distinct_images(self, square_engine, path3):
        result = square_engine.match(path3, "edge_induced")
        for embedding in result.embeddings:
            assert len(set(embedding.values())) == len(embedding)

    def test_homomorphic_allows_repeats(self, square_engine, path3):
        result = square_engine.match(path3, "homomorphic")
        assert any(
            len(set(m.values())) < len(m) for m in result.embeddings
        )

    def test_impossible_pattern_returns_zero(self, square_engine):
        p = Graph()
        p.add_vertices(["Z", "Z"])
        p.add_edge(0, 1)
        result = square_engine.match(p, "edge_induced")
        assert result.count == 0
        assert result.embeddings == []


class TestLimits:
    def test_max_embeddings_truncates(self, square_engine, path3):
        result = square_engine.match(path3, "edge_induced", max_embeddings=5)
        assert result.count == 5
        assert result.truncated
        assert len(result.embeddings) == 5

    def test_max_embeddings_no_trunc_if_fewer(self, square_engine, path3):
        result = square_engine.match(path3, "edge_induced", max_embeddings=10**6)
        assert not result.truncated

    def test_time_limit_flags_timeout(self):
        from repro.graph.generators import power_law_graph
        from repro.graph.sampling import sample_pattern

        g = power_law_graph(400, 5, seed=3)
        p = sample_pattern(g, 8, rng=1, style="dense")
        result = CSCE(g).match(p, "edge_induced", time_limit=0.05)
        assert result.timed_out
        # Partial count preserved and elapsed roughly respects the limit.
        assert result.elapsed < 5.0

    def test_count_only_skips_materialization(self, square_engine, path3):
        result = square_engine.match(path3, "edge_induced", count_only=True)
        assert result.embeddings is None
        assert result.count == 16

    def test_capped_counting_goes_through_enumeration(self, square_engine, path3):
        result = square_engine.match(
            path3, "edge_induced", count_only=True, max_embeddings=3
        )
        assert result.count == 3
        assert result.truncated
        assert result.embeddings is None


class TestUseSceAblation:
    @pytest.mark.parametrize("variant", ["edge_induced", "vertex_induced", "homomorphic"])
    def test_same_counts_with_and_without_sce(self, variant):
        from conftest import make_random_graph
        from repro.graph.sampling import sample_pattern

        g = make_random_graph(15, 30, num_labels=2, seed=4)
        p = sample_pattern(g, 4, rng=2)
        engine = CSCE(g)
        with_sce = engine.match(p, variant, count_only=True, use_sce=True).count
        without = engine.match(p, variant, count_only=True, use_sce=False).count
        assert with_sce == without == brute_count(g, p, variant)

    def test_sce_reduces_candidate_computations(self):
        # Star pattern: leaves share candidates, so SCE must cut the number
        # of candidate-set computations.
        g = Graph.from_edges(8, [(0, i) for i in range(1, 8)])
        p = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        engine = CSCE(g)
        with_sce = engine.match(p, "edge_induced", use_sce=True)
        without = engine.match(p, "edge_induced", use_sce=False)
        assert with_sce.count == without.count
        assert with_sce.stats["computed"] < without.stats["computed"]
        assert with_sce.stats["memo_hits"] > 0


class TestRestrictions:
    def test_triangle_restrictions_divide_by_automorphisms(self, square_engine):
        tri = Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        full = square_engine.match(tri, "edge_induced").count
        restricted = square_engine.match(
            tri, "edge_induced", restrictions=[(0, 1), (1, 2)]
        )
        assert restricted.count * 6 == full

    def test_restricted_embeddings_are_sorted(self, square_engine):
        tri = Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        result = square_engine.match(
            tri, "edge_induced", restrictions=[(0, 1), (1, 2)]
        )
        for m in result.embeddings:
            assert m[0] < m[1] < m[2]

    def test_restrictions_disable_factorized_counting(self, square_engine):
        tri = Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        result = square_engine.match(
            tri, "edge_induced", count_only=True, restrictions=[(0, 1), (1, 2)]
        )
        assert result.count == 2  # two triangles, each once
        assert result.embeddings is None


class TestMatchResult:
    def test_total_seconds_sums_stages(self, square_engine, path3):
        result = square_engine.match(path3, "edge_induced")
        assert result.total_seconds == pytest.approx(
            result.elapsed
            + result.read_seconds
            + result.plan_seconds
            + result.compile_seconds
        )

    def test_throughput(self, square_engine, path3):
        result = square_engine.match(path3, "edge_induced")
        if result.elapsed > 0:
            assert result.throughput == pytest.approx(
                result.count / result.elapsed
            )

    def test_repr_flags(self, square_engine, path3):
        truncated = square_engine.match(path3, "edge_induced", max_embeddings=1)
        assert "truncated" in repr(truncated)


class TestExecuteDirect:
    def test_execute_with_default_options(self, square_engine, path3):
        plan = square_engine.build_plan(path3, Variant.EDGE_INDUCED)
        result = execute(plan)
        assert result.count == 16

    def test_execute_with_options_object(self, square_engine, path3):
        plan = square_engine.build_plan(path3, Variant.EDGE_INDUCED)
        result = execute(plan, MatchOptions(count_only=True))
        assert result.count == 16
