"""Merge-ready multi-worker observability: exact counter merges, worker
snapshots, portable work units, and shard run-report aggregation.

The acceptance bar: sharding a run over K workers (one seeded run per
root candidate) and merging the K observability snapshots reproduces the
single-process totals *exactly* — counts, stats, and counters."""

import json

import pytest

from repro.core.csce import CSCE
from repro.engine.executor import SearchState
from repro.graph.patterns import CATALOG
from repro.obs import (
    Observation,
    SpanContext,
    Tracer,
    WorkerSnapshot,
    WorkUnit,
    build_run_report,
    format_run_report,
    merge_counters,
    merge_run_reports,
    merge_worker_snapshots,
    robustness_problems,
    validate_run_report,
)

from conftest import make_random_graph


@pytest.fixture(scope="module")
def graph():
    return make_random_graph(24, 60, num_labels=2, seed=11)


@pytest.fixture(scope="module")
def engine(graph):
    return CSCE(graph)


def shard_by_root(engine, pattern, variant="edge_induced"):
    """Split a run into one seeded shard per root-candidate data vertex —
    the multi-worker sharding model (each worker gets a pinned root)."""
    plan = engine.build_plan(pattern, variant)
    root = plan.order[0]
    shards = []
    for v in range(engine.store.num_vertices):
        obs = Observation(trace=False)
        result = engine.match(
            pattern, variant, count_only=False, seed={root: v}, obs=obs
        )
        shards.append((f"worker-{v}", obs, result))
    return shards


# ---------------------------------------------------------------------------
# merge_counters
# ---------------------------------------------------------------------------
class TestMergeCounters:
    def test_sums_per_key(self):
        merged = merge_counters({"a": 1, "b": 2}, {"a": 3, "c": 4})
        assert merged == {"a": 4, "b": 2, "c": 4}

    def test_empty_identity(self):
        assert merge_counters({"a": 1}, {}) == {"a": 1}
        assert merge_counters() == {}

    def test_skips_non_numeric_and_bools(self):
        merged = merge_counters({"a": 1, "note": "x", "flag": True}, {"a": 1})
        assert merged == {"a": 2}

    def test_associative_groupings_agree(self):
        a, b, c = {"n": 1}, {"n": 2, "m": 5}, {"m": 7}
        left = merge_counters(merge_counters(a, b), c)
        right = merge_counters(a, merge_counters(b, c))
        assert left == right == merge_counters(a, b, c)

    def test_disjoint_key_sets_concatenate(self):
        # Fully disjoint shards: no key collides, every entry survives.
        merged = merge_counters({"a": 1, "b": 2}, {"c": 3}, {"d": 4.5})
        assert merged == {"a": 1, "b": 2, "c": 3, "d": 4.5}


# ---------------------------------------------------------------------------
# SpanContext / WorkUnit
# ---------------------------------------------------------------------------
class TestSpanContext:
    def test_child_links_to_parent(self):
        root = SpanContext.new_root()
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id

    def test_roundtrip(self):
        ctx = SpanContext.new_root().child()
        assert SpanContext.from_dict(ctx.to_dict()) == ctx
        json.dumps(ctx.to_dict())

    def test_annotate_stamps_span(self):
        tracer = Tracer()
        ctx = SpanContext.new_root().child()
        with tracer.span("execute") as span:
            ctx.annotate(span)
        assert span.attrs["trace_id"] == ctx.trace_id
        assert span.attrs["parent_id"] == ctx.parent_id


class TestWorkUnit:
    def test_roundtrips_frame_stack_payload(self):
        root = SpanContext.new_root()
        state = SearchState.fresh(3)
        state.assignment[0] = 7
        unit = WorkUnit(
            worker="w0", payload=state.to_payload(), context=root.child()
        )
        wire = json.loads(json.dumps(unit.to_payload()))
        restored = WorkUnit.from_payload(wire)
        assert restored.worker == "w0"
        assert restored.context.trace_id == root.trace_id
        assert SearchState.from_payload(restored.payload).assignment[0] == 7


# ---------------------------------------------------------------------------
# Worker snapshots: merged == single-process, exactly
# ---------------------------------------------------------------------------
class TestWorkerSnapshots:
    def test_snapshot_roundtrip(self):
        snap = WorkerSnapshot(
            worker="w1", counters={"nodes": 5}, stats={"nodes": 5},
            context=SpanContext.new_root(),
        )
        restored = WorkerSnapshot.from_dict(
            json.loads(json.dumps(snap.to_dict()))
        )
        assert restored.worker == "w1"
        assert restored.counters == {"nodes": 5}
        assert restored.workers == ("w1",)
        assert restored.context == snap.context

    @pytest.mark.parametrize("name", ["triangle", "path4", "star4"])
    def test_sharded_run_reproduces_single_process_exactly(
        self, engine, name
    ):
        pattern = CATALOG[name]()
        full_obs = Observation(trace=False)
        full = engine.match(
            pattern, "edge_induced", count_only=False, obs=full_obs
        )
        shards = shard_by_root(engine, pattern)
        assert full.count == sum(r.count for _, _, r in shards)
        merged = merge_worker_snapshots(
            WorkerSnapshot.capture(tag, obs=obs, result=result)
            for tag, obs, result in shards
        )
        assert len(merged.workers) == len(shards)
        # Stats are exact sums over shards (integer addition).
        for key in ("nodes", "backtracks"):
            assert merged.stats[key] == sum(
                r.stats[key] for _, _, r in shards
            )

    def test_merge_order_and_grouping_do_not_matter(self, engine):
        pattern = CATALOG["triangle"]()
        shards = shard_by_root(engine, pattern)
        snaps = [
            WorkerSnapshot.capture(tag, obs=obs, result=result)
            for tag, obs, result in shards
        ]
        flat = merge_worker_snapshots(snaps)
        reversed_ = merge_worker_snapshots(list(reversed(snaps)))
        grouped = merge_worker_snapshots([
            merge_worker_snapshots(snaps[: len(snaps) // 2], worker="left"),
            merge_worker_snapshots(snaps[len(snaps) // 2:], worker="right"),
        ])
        assert flat.counters == reversed_.counters == grouped.counters
        assert flat.stats == reversed_.stats == grouped.stats


# ---------------------------------------------------------------------------
# Run-report aggregation
# ---------------------------------------------------------------------------
class TestMergeRunReports:
    def shard_reports(self, engine, pattern):
        reports = []
        total = 0
        for tag, obs, result in shard_by_root(engine, pattern):
            total += result.count
            reports.append(
                build_run_report(result, engine="CSCE", obs=obs)
            )
        return reports, total

    def test_merged_report_is_valid_and_exact(self, engine):
        pattern = CATALOG["triangle"]()
        reports, total = self.shard_reports(engine, pattern)
        merged = merge_run_reports(reports)
        validate_run_report(merged)  # raises on schema problems
        assert robustness_problems(merged) == []
        assert merged["count"] == total
        assert merged["shards"]["count"] == len(reports)
        assert sum(merged["shards"]["counts"]) == total
        assert merged["counters"]["nodes"] == sum(
            r["counters"]["nodes"] for r in reports
        )
        # Parallel wall-clock: the merged timing is the slowest shard, and
        # the cross-shard work sum is preserved separately.
        assert merged["timings"]["execute_seconds"] == max(
            r["timings"]["execute_seconds"] for r in reports
        )
        assert merged["shards"]["execute_seconds_sum"] == pytest.approx(
            sum(r["timings"]["execute_seconds"] for r in reports)
        )

    def test_merged_report_renders_shards(self, engine):
        pattern = CATALOG["triangle"]()
        reports, _ = self.shard_reports(engine, pattern)
        rendered = format_run_report(
            merge_run_reports(reports, workers=[f"w{i}" for i in
                                               range(len(reports))])
        )
        assert "shards" in rendered

    def test_worker_tags_stamped_on_spans(self):
        base = {
            "format": "repro-run-report", "version": 1, "engine": "CSCE",
            "variant": "edge_induced", "count": 1,
            "timings": {"execute_seconds": 0.5},
            "spans": [{"name": "execute", "attrs": {}}],
        }
        other = dict(base, spans=[{"name": "execute", "attrs": {}}])
        merged = merge_run_reports([base, other], workers=["a", "b"])
        tags = [s["attrs"]["worker"] for s in merged["spans"]]
        assert tags == ["a", "b"]

    def test_stop_reason_first_non_none(self):
        base = {
            "format": "repro-run-report", "version": 1, "engine": "CSCE",
            "variant": "edge_induced", "count": 0,
            "timings": {}, "stop_reason": None,
        }
        stopped = dict(base, stop_reason="time_limit", timed_out=True)
        merged = merge_run_reports([base, stopped, base])
        assert merged["stop_reason"] == "time_limit"
        assert merged["timed_out"] is True

    def test_degradation_takes_longest_ladder(self):
        base = {
            "format": "repro-run-report", "version": 1, "engine": "CSCE",
            "variant": "edge_induced", "count": 0, "timings": {},
        }
        a = dict(base, degradation=["evict_memo"])
        b = dict(base, degradation=["evict_memo", "disable_memo"])
        merged = merge_run_reports([a, b])
        assert merged["degradation"] == ["evict_memo", "disable_memo"]

    def test_single_shard_identity(self, engine):
        # Merging one shard report changes nothing observable: count,
        # counters, stop flags, and timings all pass through, and the
        # shards block degenerates to that one worker.
        pattern = CATALOG["triangle"]()
        obs = Observation(trace=False)
        result = engine.match(
            pattern, "edge_induced", count_only=False, obs=obs
        )
        report = build_run_report(result, engine="CSCE", obs=obs)
        merged = merge_run_reports([report], workers=["solo"])
        validate_run_report(merged)
        assert merged["count"] == report["count"]
        assert merged["counters"] == report["counters"]
        assert merged["stop_reason"] == report.get("stop_reason")
        assert merged["timings"]["execute_seconds"] == (
            report["timings"]["execute_seconds"]
        )
        assert merged["shards"]["count"] == 1
        assert merged["shards"]["workers"] == ["solo"]
        assert merged["shards"]["counts"] == [report["count"]]

    def test_empty_and_mismatched_inputs_rejected(self):
        with pytest.raises(ValueError):
            merge_run_reports([])
        with pytest.raises(ValueError):
            merge_run_reports(
                [{"format": "repro-run-report", "version": 1,
                  "engine": "CSCE", "variant": "v", "count": 0,
                  "timings": {}}],
                workers=["a", "b"],
            )
