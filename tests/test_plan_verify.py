"""Tests for the ahead-of-execution plan verifier (``repro.engine.verify``).

The positive direction sweeps the pattern catalog across all three
variants (what CI's plan-verify step runs through the CLI); the negative
direction seeds four classes of invalid plans — a cyclic DAG, a
disconnected matching order, a cluster from a foreign store, and a
deleted negation probe — and asserts each is rejected with its typed
diagnostic code.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.ccsr.store import CCSRStore
from repro.core.dag import build_dag
from repro.core.plan import assemble_plan
from repro.core.variants import Variant
from repro.datasets.registry import load_dataset
from repro.engine.physical import compile_plan
from repro.engine.session import MatchSession, plan_query
from repro.engine.verify import (
    CLUSTER_KEY_UNKNOWN,
    DAG_CYCLE,
    NEGATION_PROBE_MISSING,
    NEGATION_UNEXPECTED,
    ORDER_DISCONNECTED,
    ORDER_NOT_PERMUTATION,
    RESTRICTION_MALFORMED,
    SEED_PIN_INVALID,
    VerificationReport,
    verify_physical,
    verify_plan,
)
from repro.errors import PlanVerificationError
from repro.graph.patterns import CATALOG, by_name

VARIANTS = [v.value for v in Variant]


@pytest.fixture(scope="module")
def store() -> CCSRStore:
    return CCSRStore(load_dataset("dip", scale=0.2))


# ---------------------------------------------------------------------------
# Positive: every catalog pattern x variant verifies clean
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(CATALOG))
@pytest.mark.parametrize("variant", VARIANTS)
def test_catalog_plans_verify(store, name, variant):
    plan = plan_query(store, by_name(name), variant=variant)
    report = verify_physical(compile_plan(plan), store)
    assert report.ok, report.render()


def test_report_api(store):
    plan = plan_query(store, by_name("triangle"))
    report = verify_plan(plan, store)
    assert report.ok
    assert report.codes() == []
    assert report.as_dict() == {"ok": True, "diagnostics": []}
    assert report.render() == "plan verification: ok"
    # raise_for_errors on a clean report is a no-op returning the report.
    assert report.raise_for_errors() is report


# ---------------------------------------------------------------------------
# Negative: four seeded-invalid plan classes, each with a typed diagnostic
# ---------------------------------------------------------------------------
def test_cyclic_dag_rejected(store):
    plan = plan_query(store, by_name("house"))
    plan.dag.add_edge(plan.order[-1], plan.order[0])
    report = verify_plan(plan, store)
    assert DAG_CYCLE in report.codes()
    with pytest.raises(PlanVerificationError) as exc:
        report.raise_for_errors()
    assert any(d.code == DAG_CYCLE for d in exc.value.diagnostics)


def test_disconnected_order_rejected(store):
    # path4 is 0-1-2-3; matching 2 right after 0 leaves it with no earlier
    # pattern neighbor although its component already started.
    pattern = by_name("path4")
    task = store.read(pattern, Variant.EDGE_INDUCED)
    order = [0, 2, 1, 3]
    dag = build_dag(pattern, order, Variant.EDGE_INDUCED, task)
    plan = assemble_plan(
        store, task, pattern, order, dag, Variant.EDGE_INDUCED,
        planner_name="csce",
    )
    report = verify_plan(plan, store)
    assert ORDER_DISCONNECTED in report.codes()
    diagnostic = next(
        d for d in report.diagnostics if d.code == ORDER_DISCONNECTED
    )
    assert diagnostic.position == 1


def test_foreign_cluster_rejected(store):
    # A cluster resolved against a different store: same shape of object,
    # but not the live cluster the verifying store owns for any key.
    other = CCSRStore(load_dataset("dip", scale=0.1))
    plan = plan_query(store, by_name("triangle"))
    constraint = plan.backward[1][0]
    foreign = next(iter(other.clusters.values()))
    plan.backward[1][0] = dataclasses.replace(constraint, cluster=foreign)
    report = verify_physical(compile_plan(plan), store)
    assert CLUSTER_KEY_UNKNOWN in report.codes()


def test_missing_negation_probe_rejected(store):
    plan = plan_query(store, by_name("path4"), variant="vertex_induced")
    victims = [pos for pos, n in enumerate(plan.negations) if n]
    assert victims, "vertex-induced path4 must carry negation probes"
    plan.negations[victims[-1]].pop()
    report = verify_physical(compile_plan(plan), store)
    assert NEGATION_PROBE_MISSING in report.codes()


# ---------------------------------------------------------------------------
# More invariants
# ---------------------------------------------------------------------------
def test_non_permutation_order_rejected(store):
    plan = plan_query(store, by_name("triangle"))
    plan.order[0] = plan.order[1]  # duplicate vertex, 3-cycle order broken
    report = verify_plan(plan, store)
    assert report.codes() == [ORDER_NOT_PERMUTATION]


def test_negation_on_non_induced_plan_rejected(store):
    edge_plan = plan_query(store, by_name("path4"), variant="edge_induced")
    induced = plan_query(store, by_name("path4"), variant="vertex_induced")
    donor_pos = next(
        pos for pos, n in enumerate(induced.negations) if n
    )
    edge_plan.negations[donor_pos].append(induced.negations[donor_pos][0])
    report = verify_plan(edge_plan, store)
    assert NEGATION_UNEXPECTED in report.codes()


def test_bad_seed_pin_rejected(store):
    plan = plan_query(store, by_name("triangle"))
    physical = compile_plan(plan).with_seed({plan.order[0]: store.num_vertices + 7})
    report = verify_physical(physical, store)
    assert SEED_PIN_INVALID in report.codes()


def test_misplaced_restriction_rejected(store):
    plan = plan_query(store, by_name("triangle"))
    physical = compile_plan(plan, restrictions=((plan.order[0], plan.order[1]),))
    assert verify_physical(physical, store).ok
    # Blank out the op slots while keeping the pair list: the recomputed
    # placement no longer matches.
    ops = tuple(dataclasses.replace(op, restrictions=()) for op in physical.ops)
    broken = dataclasses.replace(physical, ops=ops)
    report = verify_physical(broken, store)
    assert RESTRICTION_MALFORMED in report.codes()


def test_stale_store_version_rejected(store):
    """A plan compiled before an incremental update references rebuilt
    clusters: the object-identity check rejects it."""
    local = CCSRStore(load_dataset("dip", scale=0.1))
    plan = plan_query(local, by_name("triangle"))
    physical = compile_plan(plan)
    assert verify_physical(physical, local).ok
    from repro.errors import GraphError

    for dst in range(1, local.num_vertices):
        try:
            local.insert_edge(0, dst, None)
            break
        except GraphError:  # that edge already exists; try the next
            continue
    else:
        pytest.skip("vertex 0 is connected to every other vertex")
    report = verify_physical(physical, local)
    assert CLUSTER_KEY_UNKNOWN in report.codes()


# ---------------------------------------------------------------------------
# MatchSession(verify=True) debug mode
# ---------------------------------------------------------------------------
def test_session_verify_mode_accepts_sound_plans(store):
    session = MatchSession(store, verify=True)
    entry = session.compile(by_name("house"), "vertex_induced")
    assert entry.physical.num_vertices == 5
    # Cache hits skip re-verification but still return the entry.
    again = session.compile(by_name("house"), "vertex_induced")
    assert again.cached


def test_csce_verify_passthrough(store):
    from repro.core.csce import CSCE

    engine = CSCE(store, verify=True)
    assert engine.session.verify is True
    result = engine.match(by_name("triangle"))
    assert result.count >= 0


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def test_cli_verify_catalog(capsys):
    from repro.cli import main

    code = main(
        ["verify", "--dataset", "dip", "--scale", "0.1", "--catalog",
         "--variant", "all"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "result      : ok" in out


def test_cli_verify_json(capsys):
    import json

    from repro.cli import main

    code = main(
        ["verify", "--dataset", "dip", "--scale", "0.1",
         "--pattern-size", "5", "--variant", "edge_induced", "--json"]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["failed"] == 0
    assert payload["plans"][0]["ok"] is True
