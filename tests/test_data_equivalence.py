"""Unit tests for syntactic data-vertex equivalence."""

import pytest

from repro.analysis import (
    equivalence_statistics,
    syntactic_equivalence_classes,
)
from repro.graph import Graph
from repro.graph.patterns import clique, star

from conftest import make_fig1_graph


def nontrivial(classes):
    return [c for c in classes if len(c) > 1]


class TestClasses:
    def test_fig1_paper_example(self):
        """Section II: v3 and v10 are syntactically equivalent in Fig. 1."""
        classes = syntactic_equivalence_classes(make_fig1_graph())
        assert [2, 9] in classes  # v3, v10
        assert [1, 5] in classes  # v2, v6: twin B-successors of v1

    def test_star_leaves_one_class(self):
        classes = syntactic_equivalence_classes(star(5))
        assert nontrivial(classes) == [[1, 2, 3, 4, 5]]

    def test_clique_all_equivalent(self):
        """Adjacent twins: every pair of K4 vertices swaps freely."""
        classes = syntactic_equivalence_classes(clique(4))
        assert classes == [[0, 1, 2, 3]]

    def test_path_has_end_symmetry_only(self):
        p = Graph.from_edges(3, [(0, 1), (1, 2)])
        classes = syntactic_equivalence_classes(p)
        assert [0, 2] in classes
        assert [1] in classes

    def test_labels_split_classes(self):
        g = star(4).relabeled(["c", "x", "x", "y", "y"])
        classes = syntactic_equivalence_classes(g)
        assert [1, 2] in classes
        assert [3, 4] in classes

    def test_directed_twins_require_same_direction(self):
        g = Graph()
        g.add_vertices([0, 0, 0])
        g.add_edge(0, 1, directed=True)
        g.add_edge(2, 0, directed=True)  # opposite orientation
        classes = syntactic_equivalence_classes(g)
        assert nontrivial(classes) == []

    def test_directed_twins_same_direction(self):
        g = Graph()
        g.add_vertices([0, 0, 0])
        g.add_edge(0, 1, directed=True)
        g.add_edge(0, 2, directed=True)
        classes = syntactic_equivalence_classes(g)
        assert [1, 2] in classes

    def test_adjacent_pendant_pair(self):
        # c -- w, c -- x, w -- x: w and x are adjacent twins.
        g = Graph.from_edges(3, [(0, 1), (0, 2), (1, 2)])
        classes = syntactic_equivalence_classes(g)
        assert classes == [[0, 1, 2]]  # it's a triangle: all equivalent

    def test_isolated_vertices_grouped(self):
        g = Graph()
        g.add_vertices([0, 0, 1])
        classes = syntactic_equivalence_classes(g)
        assert [0, 1] in classes
        assert [2] in classes

    def test_classes_partition_vertices(self):
        from conftest import make_random_graph

        g = make_random_graph(20, 40, num_labels=2, seed=91)
        classes = syntactic_equivalence_classes(g)
        flat = sorted(v for cls in classes for v in cls)
        assert flat == list(range(20))

    def test_equivalent_vertices_interchangeable_in_embeddings(self):
        """The semantic guarantee: swapping class members maps embeddings
        to embeddings."""
        from repro.core import CSCE
        from repro.graph.patterns import path

        g = make_fig1_graph()
        engine = CSCE(g)
        result = engine.match(path(2, labels=["A", "C"]))
        images = {m[1] for m in result.embeddings}
        # v3 (2) and v10 (9) appear symmetrically.
        assert (2 in images) == (9 in images)


class TestStatistics:
    def test_stats_shape(self):
        stats = equivalence_statistics(star(5))
        assert stats.num_vertices == 6
        assert stats.num_classes == 2
        assert stats.largest_class == 5
        assert stats.nontrivial_fraction == pytest.approx(5 / 6)
        assert stats.compression == pytest.approx(3.0)

    def test_trivial_graph(self):
        p = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
        stats = equivalence_statistics(p)
        assert stats.largest_class == 2  # 1 and 3 are twins across the diag

    def test_empty_graph(self):
        stats = equivalence_statistics(Graph())
        assert stats.compression == 1.0
        assert stats.nontrivial_fraction == 0.0
