"""Unit tests for NEC classes and SCE occurrence statistics."""

from repro.core import Variant, build_dag, nec_classes, sce_statistics
from repro.core.dag import DependencyDAG
from repro.graph import Graph


class TestNEC:
    def test_star_leaves_equivalent(self):
        star = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        classes = {frozenset(c) for c in nec_classes(star)}
        assert frozenset({1, 2, 3}) in classes

    def test_labels_split_classes(self):
        star = Graph.from_edges(
            4, [(0, 1), (0, 2), (0, 3)], vertex_labels=["c", "x", "x", "y"]
        )
        classes = {frozenset(c) for c in nec_classes(star)}
        assert frozenset({1, 2}) in classes
        assert frozenset({3}) in classes

    def test_triangle_single_class(self):
        tri = Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        assert {frozenset(c) for c in nec_classes(tri)} == {frozenset({0, 1, 2})}

    def test_cycle4_opposite_vertices(self):
        c4 = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        classes = {frozenset(c) for c in nec_classes(c4)}
        # NEC (transposition-based) pairs opposite corners: {0,2} and {1,3}.
        assert frozenset({0, 2}) in classes
        assert frozenset({1, 3}) in classes

    def test_path_asymmetric_middle(self):
        p3 = Graph.from_edges(3, [(0, 1), (1, 2)])
        classes = {frozenset(c) for c in nec_classes(p3)}
        assert frozenset({0, 2}) in classes
        assert frozenset({1}) in classes

    def test_directed_edges_matter(self):
        p = Graph.from_edges(3, [(0, 1), (2, 1)], directed=True)
        classes = {frozenset(c) for c in nec_classes(p)}
        assert frozenset({0, 2}) in classes
        q = Graph()
        q.add_vertices([0, 0, 0])
        q.add_edge(0, 1, directed=True)
        q.add_edge(1, 2, directed=True)
        classes_q = {frozenset(c) for c in nec_classes(q)}
        assert frozenset({0, 2}) not in classes_q


class TestSCEStats:
    def test_star_occurrence(self):
        star = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        dag = build_dag(star, [0, 1, 2, 3], Variant.EDGE_INDUCED)
        stats = sce_statistics(star, dag)
        # Leaves are pairwise independent -> all three show SCE; the center
        # reaches everything, so it does not.
        assert stats.sce_vertices == 3
        assert stats.sce_pairs == 3
        assert stats.occurrence == 0.75

    def test_chain_no_sce(self):
        p = Graph.from_edges(3, [(0, 1), (1, 2)])
        dag = build_dag(p, [0, 1, 2], Variant.EDGE_INDUCED)
        stats = sce_statistics(p, dag)
        assert stats.sce_pairs == 0
        assert stats.occurrence == 0.0

    def test_cluster_ratio_counts_label_differences(self):
        star = Graph.from_edges(
            4, [(0, 1), (0, 2), (0, 3)], vertex_labels=["c", "x", "x", "y"]
        )
        dag = build_dag(star, [0, 1, 2, 3], Variant.EDGE_INDUCED)
        stats = sce_statistics(star, dag)
        # Pairs: (1,2) same label, (1,3) and (2,3) different labels.
        assert stats.sce_pairs == 3
        assert stats.cluster_pairs == 2
        assert stats.cluster_ratio == 2 / 3

    def test_empty_dag_zero_division_safe(self):
        p = Graph.from_edges(2, [(0, 1)])
        dag = DependencyDAG(range(2))
        dag.add_edge(0, 1)
        stats = sce_statistics(p, dag)
        assert stats.cluster_ratio == 0.0
