"""Unit tests for the Variant enum."""

import pytest

from repro.core import Variant
from repro.errors import VariantError


class TestParse:
    @pytest.mark.parametrize(
        "alias,expected",
        [
            ("edge_induced", Variant.EDGE_INDUCED),
            ("edge-induced", Variant.EDGE_INDUCED),
            ("monomorphism", Variant.EDGE_INDUCED),
            ("non_induced", Variant.EDGE_INDUCED),
            ("E", Variant.EDGE_INDUCED),
            ("vertex_induced", Variant.VERTEX_INDUCED),
            ("induced", Variant.VERTEX_INDUCED),
            ("V", Variant.VERTEX_INDUCED),
            ("homomorphic", Variant.HOMOMORPHIC),
            ("homomorphism", Variant.HOMOMORPHIC),
            ("H", Variant.HOMOMORPHIC),
        ],
    )
    def test_aliases(self, alias, expected):
        assert Variant.parse(alias) is expected

    def test_parse_passthrough(self):
        assert Variant.parse(Variant.HOMOMORPHIC) is Variant.HOMOMORPHIC

    def test_unknown_raises(self):
        with pytest.raises(VariantError):
            Variant.parse("isomorphic-ish")


class TestSemantics:
    def test_injectivity(self):
        assert Variant.EDGE_INDUCED.injective
        assert Variant.VERTEX_INDUCED.injective
        assert not Variant.HOMOMORPHIC.injective

    def test_induced_flag(self):
        assert Variant.VERTEX_INDUCED.induced
        assert not Variant.EDGE_INDUCED.induced
        assert not Variant.HOMOMORPHIC.induced

    def test_str(self):
        assert str(Variant.EDGE_INDUCED) == "edge_induced"
