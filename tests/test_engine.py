"""Tests for the physical-operator engine (``repro.engine``).

Covers the logical->physical compiler, the iterative streaming executor,
the :class:`~repro.engine.MatchSession` compiled-plan cache, and the
satellite fixes riding on the engine PR (throughput epsilon, plan-time
clamp, seed+restriction interaction).
"""

import sys
import time

import pytest

from repro.core import CSCE, Variant
from repro.engine import (
    MIN_THROUGHPUT_ELAPSED,
    CandidateComputer,
    EmbeddingStream,
    MatchOptions,
    MatchResult,
    MatchSession,
    compile_plan,
    count_physical,
    execute_physical,
)
from repro.errors import PlanError
from repro.graph import Graph

from conftest import brute_count, make_random_graph


@pytest.fixture
def random_graph():
    return make_random_graph(20, 45, num_labels=2, seed=9)


@pytest.fixture
def engine(random_graph):
    return CSCE(random_graph)


def small_pattern():
    return Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])


class TestCompiler:
    def test_one_op_per_order_position(self, engine):
        p = small_pattern()
        plan = engine.build_plan(p, "edge_induced")
        physical = compile_plan(plan)
        assert len(physical.ops) == p.num_vertices
        assert [op.pos for op in physical.ops] == list(range(p.num_vertices))
        assert list(physical.order) == [op.u for op in physical.ops]

    def test_spec_interning_shares_nec_vertices(self, engine):
        # A star pattern: the leaves are NEC-equivalent and must intern to
        # one candidate spec.
        star = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        plan = engine.build_plan(star, "homomorphic")
        physical = compile_plan(plan)
        assert physical.num_specs < len(physical.ops)

    def test_restriction_slots_attach_to_later_position(self, engine):
        p = small_pattern()
        plan = engine.build_plan(p, "edge_induced")
        physical = compile_plan(plan, restrictions=((0, 1),))
        position = {op.u: op.pos for op in physical.ops}
        later = max((0, 1), key=lambda u: position[u])
        slots = physical.ops[position[later]].restrictions
        assert len(slots) == 1
        other, candidate_is_smaller = slots[0]
        # candidate_is_smaller is set exactly when the later vertex is the
        # smaller side of f(u) < f(v).
        assert candidate_is_smaller == (later == 0)
        assert other == (1 if later == 0 else 0)

    def test_invalid_restriction_rejected(self, engine):
        plan = engine.build_plan(small_pattern(), "edge_induced")
        with pytest.raises(PlanError):
            compile_plan(plan, restrictions=((1, 1),))
        with pytest.raises(PlanError):
            compile_plan(plan, restrictions=((0, 7),))

    def test_with_seed_pins_ops(self, engine):
        plan = engine.build_plan(small_pattern(), "edge_induced")
        physical = compile_plan(plan)
        assert not physical.has_pins
        pinned = physical.with_seed({0: 3})
        assert pinned.has_pins
        position = {op.u: op.pos for op in pinned.ops}
        assert pinned.ops[position[0]].pin == 3
        # Rebinding back to no-seed state reuses the same compiled ops.
        assert pinned.logical is physical.logical

    def test_plan_seconds_clamped_nonnegative(self, engine):
        plan = engine.build_plan(small_pattern(), "edge_induced")
        assert plan.plan_seconds >= 0.0
        physical = compile_plan(plan)
        assert physical.compile_seconds >= 0.0
        result = execute_physical(physical, MatchOptions(count_only=True))
        assert result.plan_seconds >= 0.0


class TestIterativeExecutor:
    def test_counts_match_brute_force(self, random_graph, engine):
        p = small_pattern()
        for variant in ("edge_induced", "vertex_induced", "homomorphic"):
            plan = engine.build_plan(p, variant)
            result = execute_physical(
                compile_plan(plan), MatchOptions(count_only=True)
            )
            assert result.count == brute_count(random_graph, p, variant)

    def test_deep_pattern_no_recursion_limit(self):
        # A 300-vertex path through a 600-vertex path graph: the old
        # recursive executor needed sys.setrecursionlimit for this; the
        # iterative engine runs it under the default limit.
        n = 600
        g = Graph.from_edges(n, [(i, i + 1) for i in range(n - 1)])
        depth = 300
        p = Graph.from_edges(depth, [(i, i + 1) for i in range(depth - 1)])
        limit = sys.getrecursionlimit()
        try:
            sys.setrecursionlimit(1000)
            result = CSCE(g).match(p, "edge_induced", count_only=True)
        finally:
            sys.setrecursionlimit(limit)
        # Contiguous segments of the long path, in either direction.
        assert result.count == 2 * (n - depth + 1)

    def test_count_capped_equals_stream_drain(self, engine):
        p = small_pattern()
        plan = engine.build_plan(p, "edge_induced")
        physical = compile_plan(plan)
        counted = execute_physical(
            physical,
            MatchOptions(count_only=True, max_embeddings=10_000),
        ).count
        with EmbeddingStream(physical) as s:
            drained = sum(1 for _ in s)
        assert counted == drained


class TestStreaming:
    def test_lazy_consumption(self, engine):
        p = small_pattern()
        stream = engine.match_iter(p, "edge_induced")
        first = next(stream)
        assert sorted(first) == [0, 1, 2]
        # Only one embedding of work was done.
        assert stream.count == 1
        stream.close()

    def test_stream_total_matches_match(self, engine):
        p = small_pattern()
        expected = engine.count(p, "edge_induced")
        with engine.match_iter(p, "edge_induced") as stream:
            embeddings = list(stream)
        assert len(embeddings) == expected
        assert stream.result().count == expected

    def test_cooperative_max_embeddings(self, engine):
        p = small_pattern()
        total = engine.count(p, "edge_induced")
        assert total > 2
        with engine.match_iter(p, "edge_induced", max_embeddings=2) as s:
            got = list(s)
        assert len(got) == 2
        assert s.truncated and not s.timed_out

    def test_cooperative_time_limit(self, engine, monkeypatch):
        monkeypatch.setattr("repro.engine.executor._TIME_CHECK_INTERVAL", 1)
        n = 40
        g = Graph.from_edges(n, [(i, j) for i in range(n) for j in range(i + 1, n)])
        p = Graph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        with CSCE(g).match_iter(p, "homomorphic", time_limit=1e-9) as s:
            list(s)
        assert s.timed_out
        assert s.result().timed_out

    def test_stream_embeddings_are_valid(self, random_graph, engine):
        p = small_pattern()
        for m in engine.match_iter(p, "edge_induced"):
            for e in p.edges():
                assert random_graph.has_edge(m[e.src], m[e.dst])


class TestMatchSession:
    def test_cache_hit_on_repeat(self, random_graph):
        session = MatchSession(random_graph)
        p = small_pattern()
        first = session.compile(p, Variant.EDGE_INDUCED)
        second = session.compile(p, Variant.EDGE_INDUCED)
        assert not first.cached and second.cached
        assert second.physical is first.physical
        assert session.cache_info["hits"] == 1

    def test_distinct_keys_miss(self, random_graph):
        session = MatchSession(random_graph)
        p = small_pattern()
        session.compile(p, Variant.EDGE_INDUCED)
        session.compile(p, Variant.HOMOMORPHIC)
        session.compile(p, Variant.EDGE_INDUCED, restrictions=((0, 1),))
        assert session.cache_info["misses"] == 3

    def test_store_mutation_invalidates(self, random_graph):
        session = MatchSession(random_graph)
        p = small_pattern()
        before = session.compile(p, Variant.EDGE_INDUCED)
        v = session.store.insert_vertex(0)
        session.store.insert_edge(0, v, None, False)
        after = session.compile(p, Variant.EDGE_INDUCED)
        # Version bump changed the key: the stale compiled plan (holding
        # references to rebuilt clusters) must not be reused.
        assert not after.cached
        assert after.physical is not before.physical

    def test_lru_eviction(self, random_graph):
        session = MatchSession(random_graph, cache_size=1)
        tri = small_pattern()
        path = Graph.from_edges(3, [(0, 1), (1, 2)])
        session.compile(tri, Variant.EDGE_INDUCED)
        session.compile(path, Variant.EDGE_INDUCED)
        assert not session.compile(tri, Variant.EDGE_INDUCED).cached

    def test_structural_fingerprint_shares_plans(self, random_graph):
        session = MatchSession(random_graph)
        a = Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        b = Graph.from_edges(3, [(1, 2), (0, 2), (0, 1)])  # same edges
        session.compile(a, Variant.EDGE_INDUCED)
        assert session.compile(b, Variant.EDGE_INDUCED).cached


class TestSeedRestrictionInteraction:
    """Satellite: a seeded vertex that violates an ``f(u) < f(v)``
    restriction must yield zero embeddings on every execution path."""

    @pytest.fixture
    def setup(self, engine):
        p = small_pattern()
        base = engine.match(p, "edge_induced")
        # Pick an embedding and seed u0 at its u1-image: under the
        # restriction f(0) < f(1) the seed admits strictly fewer (possibly
        # zero) embeddings; pin both to force a violation.
        some = base.embeddings[0]
        return p, some

    def test_violating_seed_zero_embeddings_enumeration(self, engine, setup):
        p, some = setup
        hi, lo = max(some[0], some[1]), min(some[0], some[1])
        seed = {0: hi, 1: lo}  # f(0) > f(1) violates (0, 1)
        result = engine.match(
            p, "edge_induced", restrictions=[(0, 1)], seed=seed
        )
        assert result.count == 0
        assert result.embeddings == []

    def test_violating_seed_zero_embeddings_streaming(self, engine, setup):
        p, some = setup
        hi, lo = max(some[0], some[1]), min(some[0], some[1])
        seed = {0: hi, 1: lo}
        with engine.match_iter(
            p, "edge_induced", restrictions=[(0, 1)], seed=seed
        ) as s:
            assert list(s) == []

    def test_violating_seed_zero_count_counting_path(self, engine, setup):
        p, some = setup
        hi, lo = max(some[0], some[1]), min(some[0], some[1])
        seed = {0: hi, 1: lo}
        result = engine.match(
            p, "edge_induced", count_only=True,
            restrictions=[(0, 1)], seed=seed,
        )
        assert result.count == 0

    def test_satisfying_seed_respects_restriction(self, engine, setup):
        p, _ = setup
        unrestricted = engine.match(p, "edge_induced", restrictions=[(0, 1)])
        for m in unrestricted.embeddings:
            seeded = engine.match(
                p, "edge_induced", restrictions=[(0, 1)],
                seed={0: m[0], 1: m[1]},
            )
            assert seeded.count >= 1
            for got in seeded.embeddings:
                assert got[0] < got[1]


class TestThroughputEpsilon:
    """Satellite: instant nonzero-count runs must report positive
    throughput instead of 0.0."""

    def test_zero_elapsed_nonzero_count(self):
        result = MatchResult(
            count=5, variant=Variant.EDGE_INDUCED, embeddings=None,
            elapsed=0.0,
        )
        assert result.throughput == 5 / MIN_THROUGHPUT_ELAPSED
        assert result.throughput > 0

    def test_zero_count_stays_zero(self):
        result = MatchResult(
            count=0, variant=Variant.EDGE_INDUCED, embeddings=None,
            elapsed=0.0,
        )
        assert result.throughput == 0.0

    def test_normal_elapsed_unchanged(self):
        result = MatchResult(
            count=10, variant=Variant.EDGE_INDUCED, embeddings=None,
            elapsed=2.0,
        )
        assert result.throughput == pytest.approx(5.0)


class TestFactorizedCountingParity:
    def test_count_physical_matches_enumeration(self, random_graph, engine):
        p = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        plan = engine.build_plan(p, "homomorphic")
        physical = compile_plan(plan)
        total, stats, stop_reason, degradation = count_physical(
            physical, MatchOptions(count_only=True)
        )
        enumerated = execute_physical(
            physical, MatchOptions(count_only=True, max_embeddings=10**9)
        ).count
        assert total == enumerated
        assert stop_reason is None
        assert degradation == []
        assert stats["nodes"] >= 0

    def test_compile_seconds_in_result(self, engine):
        result = engine.match(small_pattern(), "edge_induced", count_only=True)
        assert result.compile_seconds >= 0.0
        assert result.total_seconds >= result.compile_seconds


class TestSCEReportObs:
    """Satellite: ``sce_report`` routes the engine's obs through the
    cluster read, so the read span appears."""

    def test_read_span_emitted(self, random_graph):
        from repro.obs import Observation

        obs = Observation(trace=True)
        engine = CSCE(random_graph, obs=obs)
        engine.sce_report(small_pattern())
        assert obs.tracer.find("read") is not None


class TestCandidateComputerMemo:
    def test_memo_hit_on_shared_spec(self, engine):
        star = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        plan = engine.build_plan(star, "homomorphic")
        physical = compile_plan(plan)
        computer = CandidateComputer(physical)
        op = physical.ops[1]
        assignment = [None] * physical.num_vertices
        for prior in op.priors:
            assignment[prior] = 0
        computer.raw(op, assignment)
        computer.raw(op, assignment)
        assert computer.stats.memo_hits >= 1


class TestLayering:
    def test_engine_does_not_import_cli_or_bench(self):
        import subprocess

        check = (
            "import sys, repro.engine; "
            "assert 'repro.cli' not in sys.modules, 'cli leaked'; "
            "assert not any(m.startswith('repro.bench') for m in sys.modules)"
        )
        proc = subprocess.run(
            [sys.executable, "-c", check],
            capture_output=True, text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            cwd=".",
        )
        assert proc.returncode == 0, proc.stderr
