"""Chaos suite: seeded fault injection against the streaming engine.

Every injected failure must surface as a typed :class:`repro.errors.ReproError`
subclass or a clean truncated result — never a corrupted count, a bare
``Exception``, or a poisoned session cache. CI runs this file under
pytest-timeout with faulthandler enabled (see the chaos job); locally it
needs no plugins.
"""

import pytest

from repro.core import CSCE
from repro.core.continuous import ContinuousMatcher
from repro.engine import (
    STOP_CANCELLED,
    Budget,
    CancelToken,
    ResourceGovernor,
)
from repro.errors import (
    ClusterReadError,
    MatchCancelled,
    ReproError,
    StoreError,
)
from repro.graph import Graph
from repro.testing import (
    FaultInjector,
    cancel,
    fail_cluster_read,
    faults,
    memory_spike,
    raise_error,
    slowdown,
)

from conftest import make_random_graph


@pytest.fixture
def graph():
    return make_random_graph(30, 85, num_labels=2, seed=7)


@pytest.fixture
def engine(graph):
    return CSCE(graph)


def square():
    return Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])


@pytest.fixture(autouse=True)
def no_leaked_injector():
    yield
    assert faults.ACTIVE is None, "a test leaked an installed FaultInjector"


class TestInjectorMechanics:
    def test_fire_is_noop_without_injector(self):
        assert faults.fire("ccsr.read_cluster", key="x") is None

    def test_fired_counts_sites_without_rules(self, engine):
        injector = FaultInjector()
        with injector:
            engine.match(square())
        assert injector.fired["ccsr.read_cluster"] > 0
        assert injector.fired["engine.tick"] > 0

    def test_double_install_raises(self):
        first = FaultInjector().install()
        try:
            with pytest.raises(RuntimeError):
                FaultInjector().install()
        finally:
            first.uninstall()

    def test_probability_is_seeded_deterministic(self):
        def decisions(seed):
            injector = FaultInjector(seed=seed).on(
                "site", lambda r, s, c: True, probability=0.5
            )
            return [bool(injector.fire("site")) for _ in range(32)]

        assert decisions(42) == decisions(42)
        assert decisions(42) != decisions(43)

    def test_after_and_times_gating(self):
        hits = []
        injector = FaultInjector().on(
            "site", lambda r, s, c: hits.append(r.seen), after=2, times=2
        )
        for _ in range(6):
            injector.fire("site")
        assert hits == [3, 4]


class TestClusterReadFaults:
    def test_read_failure_is_typed_and_does_not_poison_engine(self, engine):
        reference = engine.match(square()).count
        # A fresh session forces the read phase (the original engine's
        # compiled-plan cache would skip the cluster reads entirely).
        fresh = CSCE(engine.store)
        with FaultInjector(seed=0).on("ccsr.read_cluster", fail_cluster_read):
            with pytest.raises(ClusterReadError) as exc:
                fresh.match(square())
        assert isinstance(exc.value, StoreError)
        assert isinstance(exc.value, ReproError)
        # The fault left no partial state behind: both the engine that
        # failed mid-read and the untouched one produce the exact count.
        assert fresh.match(square()).count == reference
        assert engine.match(square()).count == reference

    def test_read_failure_on_the_last_read(self, engine):
        # Probe how many cluster reads one fresh match performs, then
        # fail exactly the last one — the worst spot for leftover state.
        probe = FaultInjector()
        with probe:
            CSCE(engine.store).match(square())
        per_match = probe.fired["ccsr.read_cluster"]
        assert per_match >= 1
        injector = FaultInjector(seed=0).on(
            "ccsr.read_cluster", fail_cluster_read, after=per_match - 1
        )
        with injector:
            with pytest.raises(ClusterReadError):
                CSCE(engine.store).match(square())
        # The default RetryPolicy re-fires the failing site twice (three
        # attempts total) before letting the error escape.
        assert injector.fired["ccsr.read_cluster"] == per_match + 2

    def test_custom_error_factory(self, engine):
        class Bespoke(ReproError):
            pass

        with FaultInjector().on("ccsr.read_cluster", raise_error(Bespoke)):
            with pytest.raises(Bespoke):
                CSCE(engine.store).match(square())


class TestSlowdownFaults:
    def test_slowdown_preserves_counts(self, engine):
        reference = engine.match(square()).count
        with FaultInjector(seed=3).on(
            "engine.tick", slowdown(0.0005), times=5
        ):
            result = engine.match(square())
        assert result.count == reference
        assert result.stop_reason is None


class TestCancellationFaults:
    def test_midstream_cancel_yields_clean_truncated_result(self, engine):
        full = engine.match(square()).count
        token = CancelToken()
        gov = ResourceGovernor(cancel=token)
        with FaultInjector(seed=4).on(
            "engine.tick", cancel(token), after=5, times=1
        ):
            result = engine.match(square(), governor=gov)
        assert result.stop_reason == STOP_CANCELLED
        assert 0 <= result.count < full
        with pytest.raises(MatchCancelled) as exc:
            result.check()
        assert exc.value.partial_count == result.count

    def test_cancelled_embeddings_are_a_true_prefix(self, engine):
        full_set = {
            tuple(sorted(e.items()))
            for e in engine.match(square(), count_only=False).embeddings
        }
        token = CancelToken()
        gov = ResourceGovernor(cancel=token)
        with FaultInjector(seed=4).on(
            "engine.tick", cancel(token), after=8, times=1
        ):
            partial = list(engine.match_iter(square(), governor=gov))
        partial_set = {tuple(sorted(e.items())) for e in partial}
        assert len(partial_set) == len(partial)  # no duplicates
        assert partial_set <= full_set  # no fabricated embeddings

    def test_cancel_then_checkpoint_then_resume_exact(self, engine, tmp_path):
        # The chaos/checkpoint integration: an injected cancellation
        # suspends the stream, the auto-checkpoint captures it, and the
        # resumed run completes to the exact full count.
        full = engine.match(square()).count
        assert full > 0
        path = tmp_path / "ck.json"
        token = CancelToken()
        gov = ResourceGovernor(cancel=token)
        with FaultInjector(seed=4).on(
            "engine.tick", cancel(token), after=5, times=1
        ):
            stream = engine.match_iter(
                square(), governor=gov, checkpoint_path=path
            )
            emitted = len(list(stream))
        assert stream.stop_reason == STOP_CANCELLED
        assert path.exists()
        rest, resumed = list(engine.resume(path)), None
        resumed = emitted + len(rest)
        assert resumed == full


class TestMemoryPressureFaults:
    def test_ladder_never_corrupts_counts(self, engine):
        # Brief pressure degrades the run (memo evicted/disabled) but the
        # final count must equal the pristine run's count.
        reference = engine.match(square()).count
        gov = ResourceGovernor(budget=Budget(memory_limit_mb=256.0))
        with FaultInjector(seed=5).on(
            "governor.memory", memory_spike(10_000.0), times=1
        ):
            result = engine.match(square(), governor=gov)
        assert result.count == reference
        assert result.degradation  # the ladder did engage
        assert result.stop_reason is None

    def test_suspend_under_sustained_pressure(self, engine):
        gov = ResourceGovernor(budget=Budget(memory_limit_mb=256.0))
        with FaultInjector(seed=5).on(
            "governor.memory", memory_spike(10_000.0)
        ):
            result = engine.match(square(), governor=gov)
        assert result.stop_reason == "memory_limit"
        assert result.degradation[-1] == "suspend"


class TestContinuousUnderFaults:
    """Satellite: a tripped cancel token mid-delta must leave the
    continuous matcher fully reusable (store, total, plan cache)."""

    def _matcher(self):
        # Uniform labels so every pattern edge pins onto any data edge —
        # the delta always has work to cancel.
        graph = make_random_graph(30, 85, num_labels=1, seed=7)
        engine = CSCE(graph)
        token = CancelToken()
        gov = ResourceGovernor(cancel=token)
        p = Graph.from_edges(3, [(0, 1), (1, 2)])
        matcher = ContinuousMatcher(engine, p, governor=gov)
        free = next(
            (a, b)
            for a in range(graph.num_vertices)
            for b in range(a + 1, graph.num_vertices)
            if not graph.has_edge(a, b)
        )
        return matcher, token, engine, free

    def test_cancelled_insert_rolls_back_and_is_retryable(self):
        matcher, token, engine, (a, b) = self._matcher()
        baseline_total = matcher.total
        baseline_edges = engine.store.num_edges
        token.trip("chaos")
        with pytest.raises(MatchCancelled):
            matcher.insert(a, b)
        # Rolled back: store and standing total untouched.
        assert engine.store.num_edges == baseline_edges
        assert matcher.total == baseline_total
        # Clear the token and the same insert succeeds.
        token.clear()
        delta = matcher.insert(a, b)
        assert engine.store.num_edges == baseline_edges + 1
        assert matcher.total == baseline_total + delta.count
        # The matcher's total still agrees with a fresh full count.
        assert matcher.total == engine.count(matcher.pattern, matcher.variant)

    def test_cancelled_remove_leaves_store_untouched(self):
        matcher, token, engine, (a, b) = self._matcher()
        matcher.insert(a, b)
        baseline_total = matcher.total
        baseline_edges = engine.store.num_edges
        token.trip("chaos")
        with pytest.raises(MatchCancelled):
            matcher.remove(a, b)
        assert engine.store.num_edges == baseline_edges
        assert matcher.total == baseline_total
        token.clear()
        matcher.remove(a, b)
        assert engine.store.num_edges == baseline_edges - 1
        assert matcher.total == engine.count(matcher.pattern, matcher.variant)

    def test_injected_cancel_mid_delta(self):
        matcher, token, engine, (a, b) = self._matcher()
        baseline_total = matcher.total
        baseline_edges = engine.store.num_edges
        with FaultInjector(seed=6).on(
            "engine.tick", cancel(token), times=1
        ):
            with pytest.raises(MatchCancelled):
                matcher.insert(a, b)
        assert engine.store.num_edges == baseline_edges
        assert matcher.total == baseline_total
        token.clear()
        matcher.insert(a, b)
        assert matcher.total == engine.count(matcher.pattern, matcher.variant)


class TestSessionCacheConsistency:
    def test_cache_survives_fault_storm(self, engine):
        # Each pattern's first compile fails mid-read (nothing cached);
        # the clean retry must compile, cache, and count correctly, and a
        # cache hit afterwards must agree.
        patterns = [
            Graph.from_edges(3, [(0, 1), (1, 2)]),
            square(),
            Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)]),
        ]
        for seed, p in enumerate(patterns):
            with FaultInjector(seed=seed).on(
                "ccsr.read_cluster", fail_cluster_read
            ):
                with pytest.raises(ClusterReadError):
                    engine.match(p)
            clean = engine.match(p).count
            assert engine.match(p).count == clean  # cache hit agrees
            assert CSCE(engine.store).match(p).count == clean
