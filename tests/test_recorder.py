"""Flight recorder, Perfetto export, and progress/ETA estimation."""

import json
import os
import signal
import time

import pytest

from repro.cli import _install_sigusr1, main
from repro.core.csce import CSCE
from repro.engine import CancelToken, ResourceGovernor
from repro.graph.patterns import cycle, path
from repro.obs import (
    KNOWN_EVENTS,
    NULL_RECORDER,
    FlightRecorder,
    Heartbeat,
    Observation,
    ProgressEstimator,
    build_run_report,
    format_run_report,
    perfetto_trace,
    robustness_problems,
    search_state_fraction,
    validate_run_report,
    write_perfetto,
)
from repro.testing import FaultInjector, cancel, faults

from conftest import make_random_graph


@pytest.fixture(autouse=True)
def no_leaked_injector():
    yield
    assert faults.ACTIVE is None, "a test leaked an installed FaultInjector"


@pytest.fixture
def graph():
    return make_random_graph(30, 85, num_labels=2, seed=7)


@pytest.fixture
def engine(graph):
    return CSCE(graph)


# ---------------------------------------------------------------------------
# Ring-buffer mechanics
# ---------------------------------------------------------------------------
class TestFlightRecorder:
    def test_records_and_evicts_oldest(self):
        recorder = FlightRecorder(capacity=4)
        for i in range(10):
            recorder.record("tick", nodes=i)
        assert len(recorder) == 4
        assert recorder.recorded == 10
        assert recorder.dropped == 6
        assert [e.fields["nodes"] for e in recorder.events()] == [6, 7, 8, 9]

    def test_tail_returns_newest_oldest_first(self):
        recorder = FlightRecorder(capacity=8)
        for i in range(5):
            recorder.record("tick", nodes=i)
        assert [e.fields["nodes"] for e in recorder.tail(2)] == [3, 4]
        assert recorder.tail(0) == []

    def test_timestamps_monotone(self):
        recorder = FlightRecorder()
        recorder.record("run_start")
        recorder.record("run_end")
        a, b = recorder.events()
        assert b.ts >= a.ts

    def test_as_dict_shape(self):
        recorder = FlightRecorder(capacity=2)
        recorder.record("stop", reason="time_limit")
        doc = recorder.as_dict()
        assert doc["capacity"] == 2
        assert doc["recorded"] == 1
        assert doc["dropped"] == 0
        [event] = doc["events"]
        assert event["name"] == "stop"
        assert event["fields"] == {"reason": "time_limit"}
        json.dumps(doc)  # JSON-ready

    def test_format_dump_header_and_lines(self):
        recorder = FlightRecorder()
        recorder.record("run_start", mode="count")
        recorder.record("stop", reason="cancelled")
        dump = recorder.format_dump()
        assert "flight recorder: 2 event(s) recorded" in dump
        assert "run_start" in dump and "reason=cancelled" in dump

    def test_clear(self):
        recorder = FlightRecorder()
        recorder.record("tick")
        recorder.clear()
        assert len(recorder) == 0 and recorder.recorded == 0

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_null_recorder_is_inert(self):
        NULL_RECORDER.record("tick", nodes=1)
        assert len(NULL_RECORDER) == 0
        assert NULL_RECORDER.as_dict()["events"] == []
        assert "disabled" in NULL_RECORDER.format_dump()

    def test_known_events_registry_closed(self):
        assert set(KNOWN_EVENTS) == {
            "run_start", "tick", "degrade", "checkpoint",
            "fault", "stop", "run_end",
            # Pool lifecycle (engine.pool): unit dispatched, live stack
            # split for a steal, worker joined/died.
            "unit", "steal", "worker",
            # Pool supervision (engine.pool): stall watchdog escalated,
            # poison unit quarantined to replayable residue.
            "worker_stall", "quarantine",
        }


# ---------------------------------------------------------------------------
# Engine integration
# ---------------------------------------------------------------------------
class TestRecorderIntegration:
    def test_observed_run_brackets_with_start_end(self, engine):
        obs = Observation(trace=False)
        engine.match(cycle(3), "edge_induced", obs=obs)
        names = [e.name for e in obs.recorder.events()]
        assert names[0] == "run_start"
        assert names[-1] == "run_end"

    def test_unobserved_run_records_nothing(self, engine):
        result = engine.match(cycle(3), "edge_induced")
        assert result.progress is None  # no obs -> no estimator, no events

    def test_cancelled_run_leaves_stop_event(self, engine):
        obs = Observation(trace=False)
        token = CancelToken()
        token.trip("pre-tripped")
        governor = ResourceGovernor(cancel=token, obs=obs)
        result = engine.match(
            cycle(3), "edge_induced", obs=obs, governor=governor
        )
        assert result.stop_reason == "cancelled"
        names = [e.name for e in obs.recorder.events()]
        assert "stop" in names
        stop = next(e for e in obs.recorder.events() if e.name == "stop")
        assert stop.fields["reason"] == "cancelled"

    def test_faulted_run_report_tail_explains_stop(self, engine):
        # The acceptance scenario: a run killed by an injected fault leaves
        # a recorder dump in its run-report whose tail explains the stop.
        obs = Observation(trace=False)
        token = CancelToken()
        governor = ResourceGovernor(cancel=token, obs=obs)
        with FaultInjector(seed=0).on("engine.tick", cancel(token), after=40):
            result = engine.match(
                path(3), "edge_induced", count_only=False,
                obs=obs, governor=governor,
            )
        assert result.stop_reason == "cancelled"
        report = build_run_report(result, obs=obs, engine="CSCE")
        assert "recorder" in report
        names = [e["name"] for e in report["recorder"]["events"]]
        assert "fault" in names
        assert names[-1] in ("stop", "run_end")
        assert any(
            e["name"] == "stop"
            and e.get("fields", {}).get("reason") == "cancelled"
            for e in report["recorder"]["events"]
        )
        rendered = format_run_report(report)
        assert "flight recorder" in rendered
        assert validate_run_report(report) is None or True  # no exception
        assert robustness_problems(report) == []

    def test_governor_degrade_rungs_recorded(self, engine):
        from repro.engine import Budget

        obs = Observation(trace=False)
        governor = ResourceGovernor(
            budget=Budget(memory_limit_mb=0.000001), obs=obs
        )
        result = engine.match(
            path(3), "edge_induced", count_only=False,
            obs=obs, governor=governor,
        )
        assert result.degradation  # the ladder climbed
        rungs = [
            e.fields["rung"]
            for e in obs.recorder.events()
            if e.name == "degrade"
        ]
        assert rungs == list(result.degradation)

    def test_stream_records_checkpoint_write(self, engine, tmp_path):
        target = tmp_path / "ckpt.json"
        stream = engine.match_iter(
            path(3), "edge_induced", max_embeddings=1,
            obs=Observation(trace=False), checkpoint_path=str(target),
        )
        with stream:
            list(stream)
        names = [e.name for e in stream.runtime._recorder.events()]
        assert "checkpoint" in names
        assert names[-1] == "run_end"


# ---------------------------------------------------------------------------
# Perfetto export
# ---------------------------------------------------------------------------
class TestPerfetto:
    def test_spans_and_events_on_one_timeline(self, engine):
        obs = Observation()
        engine.match(cycle(3), "edge_induced", obs=obs)
        doc = perfetto_trace(obs.tracer, obs.recorder, pid=42)
        phases = {event["ph"] for event in doc["traceEvents"]}
        assert phases == {"X", "i"}
        timestamps = [event["ts"] for event in doc["traceEvents"]]
        assert timestamps == sorted(timestamps)
        assert all(event["pid"] == 42 for event in doc["traceEvents"])
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert all(e["s"] == "t" for e in instants)
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {"match", "execute"} <= {e["name"] for e in spans}

    def test_write_perfetto_roundtrip(self, engine, tmp_path):
        obs = Observation()
        engine.match(cycle(3), "edge_induced", obs=obs)
        out = tmp_path / "trace.json"
        write_perfetto(out, obs.tracer, obs.recorder)
        doc = json.loads(out.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert doc["traceEvents"]

    def test_empty_instruments_export_empty_trace(self):
        doc = perfetto_trace(None, None)
        assert doc["traceEvents"] == []


# ---------------------------------------------------------------------------
# Progress fraction + estimator
# ---------------------------------------------------------------------------
class TestSearchStateFraction:
    def test_empty_stack_is_zero(self):
        assert search_state_fraction([None, None], [0, 0]) == 0.0

    def test_single_depth_fraction(self):
        # cursor at 3 => 2 of 4 candidates fully consumed
        assert search_state_fraction([[10, 11, 12, 13]], [3]) == 0.5

    def test_nested_depths_accumulate(self):
        # depth 0: 1 of 4 consumed; depth 1: 1 of 2 consumed within the
        # current depth-0 subtree (worth 1/4 each) => 0.25 + 0.125
        values = [[1, 2, 3, 4], [5, 6]]
        index = [2, 2]
        assert search_state_fraction(values, index) == pytest.approx(0.375)

    def test_monotone_in_cursor(self):
        values = [[1, 2, 3, 4, 5]]
        samples = [search_state_fraction(values, [i]) for i in range(6)]
        assert samples == sorted(samples)
        assert samples[-1] <= 1.0

    def test_empty_candidate_list_stops(self):
        assert search_state_fraction([[], [1]], [0, 0]) == 0.0


class TestProgressEstimator:
    def test_monotone_clamp(self):
        est = ProgressEstimator()
        assert est.update(0.5) == 0.5
        assert est.update(0.3) == 0.5  # never goes backwards
        assert est.update(0.8) == 0.8
        assert est.percent == 80.0

    def test_eta_unknown_before_rate(self):
        est = ProgressEstimator()
        est.update(0.1)
        assert est.eta_seconds() is None

    def test_eta_appears_with_rate(self):
        est = ProgressEstimator()
        est.update(0.2)
        time.sleep(0.01)
        est.update(0.4)
        eta = est.eta_seconds()
        assert eta is not None and eta > 0.0
        assert "ETA" in est.describe()

    def test_complete_pins_to_hundred(self):
        est = ProgressEstimator()
        est.update(0.4)
        est.complete()
        assert est.percent == 100.0
        assert est.eta_seconds() == 0.0
        doc = est.as_dict()
        assert doc["percent"] == 100.0 and doc["eta_seconds"] == 0.0

    def test_bad_alpha_rejected(self):
        with pytest.raises(ValueError):
            ProgressEstimator(alpha=0.0)


class TestProgressIntegration:
    def test_exhaustive_run_reports_hundred_percent(self, engine):
        obs = Observation(trace=False)
        result = engine.match(cycle(3), "edge_induced", obs=obs)
        assert result.progress is not None
        assert result.progress["percent"] == 100.0
        report = build_run_report(result, obs=obs, engine="CSCE")
        assert report["progress"]["percent"] == 100.0
        assert robustness_problems(report) == []

    def test_stopped_run_progress_stays_bounded(self, engine):
        obs = Observation(trace=False)
        token = CancelToken()
        governor = ResourceGovernor(cancel=token, obs=obs)
        with FaultInjector(seed=1).on("engine.tick", cancel(token), after=30):
            result = engine.match(
                path(3), "edge_induced", count_only=False,
                obs=obs, governor=governor,
            )
        assert result.stop_reason == "cancelled"
        assert result.progress is not None
        assert 0.0 <= result.progress["percent"] < 100.0

    def test_heartbeat_lines_show_monotone_percent(self, engine):
        lines: list[str] = []
        heartbeat = Heartbeat(interval=0.0, emit=lines.append)
        obs = Observation(trace=False, heartbeat=heartbeat)
        # A bare injector (no rules) forces tick interval 1, so every node
        # beats; interval=0.0 emits a line per beat.
        with FaultInjector():
            engine.match(path(3), "edge_induced", count_only=False, obs=obs)
        assert len(lines) >= 2
        percents = []
        for line in lines:
            assert "done" in line
            percents.append(float(line.split("%")[0].rsplit(" ", 1)[-1]))
        assert percents == sorted(percents)

    def test_counting_path_attaches_progress(self, engine):
        obs = Observation(trace=False)
        result = engine.match(path(3), "edge_induced", count_only=True, obs=obs)
        assert result.progress is not None
        assert result.progress["percent"] == 100.0

    def test_metrics_pump_gauges_progress(self, engine):
        from repro.obs import MetricsPump

        pump = MetricsPump([])
        obs = Observation(trace=False, metrics=pump)
        result = engine.match(cycle(3), "edge_induced", obs=obs)
        obs.finish(result)
        names = {m.name for m in pump.registry}
        assert any("progress_percent" in name for name in names)
        assert any("recorder_events" in name for name in names)


# ---------------------------------------------------------------------------
# CLI surfaces
# ---------------------------------------------------------------------------
class TestCliSurfaces:
    def test_trace_perfetto_flag_writes_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main([
            "match", "--dataset", "yeast", "--scale", "0.2",
            "--pattern-size", "4", "--seed", "1",
            "--trace-perfetto", str(out),
        ])
        assert code == 0
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]
        assert "perfetto" in capsys.readouterr().err

    def test_dump_recorder_flag(self, capsys):
        code = main([
            "match", "--dataset", "yeast", "--scale", "0.2",
            "--pattern-size", "4", "--seed", "1", "--dump-recorder",
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "flight recorder" in err
        assert "run_end" in err

    @pytest.mark.skipif(
        not hasattr(signal, "SIGUSR1"), reason="platform lacks SIGUSR1"
    )
    def test_sigusr1_dumps_recorder(self, capsys):
        obs = Observation(trace=False)
        obs.recorder.record("run_start", mode="stream")
        installed = _install_sigusr1(obs)
        assert installed is not None
        try:
            os.kill(os.getpid(), signal.SIGUSR1)
            time.sleep(0.01)  # let the handler run at a bytecode boundary
        finally:
            signal.signal(*installed)
        err = capsys.readouterr().err
        assert "flight recorder" in err and "run_start" in err
