"""Unit tests for the CCSR subpackage: keys, clusters, and the store."""

import numpy as np
import pytest

from repro.ccsr import CCSRStore, Cluster, ClusterKey, cluster_key_for_labels
from repro.ccsr.key import cluster_key_for_edge
from repro.graph import Graph

from conftest import make_fig1_graph


class TestClusterKey:
    def test_directed_key_preserves_order(self):
        key = cluster_key_for_labels("A", "B", None, True)
        assert (key.src_label, key.dst_label) == ("A", "B")
        assert key != cluster_key_for_labels("B", "A", None, True)

    def test_undirected_key_canonicalizes(self):
        assert cluster_key_for_labels("B", "A", None, False) == cluster_key_for_labels(
            "A", "B", None, False
        )

    def test_mixed_type_labels_get_stable_order(self):
        a = cluster_key_for_labels(1, "x", None, False)
        b = cluster_key_for_labels("x", 1, None, False)
        assert a == b

    def test_edge_label_distinguishes_clusters(self):
        assert cluster_key_for_labels("A", "B", "r1", True) != cluster_key_for_labels(
            "A", "B", "r2", True
        )

    def test_key_for_edge(self):
        g = Graph()
        g.add_vertices(["A", "B"])
        e = g.add_edge(0, 1, directed=True)
        key = cluster_key_for_edge(g.vertex_labels, e)
        assert key == ClusterKey("A", "B", None, True)

    def test_connects(self):
        key = cluster_key_for_labels("A", "B", None, True)
        assert key.connects("A", "B")
        assert key.connects("B", "A")
        assert not key.connects("A", "C")

    def test_str_uses_null_for_unlabeled(self):
        assert "NULL" in str(cluster_key_for_labels("A", "B", None, True))


class TestCluster:
    def test_directed_cluster_has_two_csrs(self):
        key = ClusterKey("A", "B", None, True)
        cluster = Cluster(key, [(0, 1), (0, 2), (3, 1)], num_vertices=4)
        assert cluster.in_csr is not None
        assert list(cluster.successors(0)) == [1, 2]
        assert list(cluster.predecessors(1)) == [0, 3]
        assert cluster.num_edges == 3

    def test_undirected_cluster_single_symmetric_csr(self):
        key = ClusterKey("A", "B", None, False)
        cluster = Cluster(key, [(0, 1), (2, 1)], num_vertices=3)
        assert cluster.in_csr is None
        assert list(cluster.successors(1)) == [0, 2]
        assert list(cluster.predecessors(1)) == [0, 2]
        assert cluster.num_entries == 4  # each undirected edge stored twice
        assert cluster.num_edges == 2

    def test_contains_and_touches(self):
        directed = Cluster(ClusterKey("A", "B", None, True), [(0, 1)], 2)
        assert directed.contains_edge(0, 1)
        assert not directed.contains_edge(1, 0)
        assert directed.touches(1, 0)  # direction-insensitive probe

    def test_decompress_gives_same_neighbors(self):
        cluster = Cluster(ClusterKey(0, 0, None, False), [(0, 5), (5, 9)], 10)
        before = [list(cluster.successors(v)) for v in range(10)]
        cluster.decompress()
        after = [list(cluster.successors(v)) for v in range(10)]
        assert before == after
        assert cluster.is_decompressed

    def test_compressed_row_index_is_smaller_for_sparse_rows(self):
        # 2 edges among 1000 vertices: compressed I_R holds 2 ints per
        # nonempty row; the standard one would hold 1001.
        cluster = Cluster(ClusterKey(0, 0, None, True), [(0, 1), (500, 2)], 1000)
        assert cluster.out_csr.compressed_index_length == 4
        assert cluster.out_csr.standard_index_length() == 1001

    def test_empty_neighbors(self):
        cluster = Cluster(ClusterKey(0, 0, None, True), [(0, 1)], 5)
        assert cluster.successors(3).shape == (0,)

    def test_iter_entries(self):
        cluster = Cluster(ClusterKey(0, 0, None, True), [(2, 1), (0, 1)], 3)
        assert sorted(cluster.iter_directed_entries()) == [(0, 1), (2, 1)]


class TestStore:
    @pytest.fixture
    def store(self):
        return CCSRStore(make_fig1_graph())

    def test_cluster_partition(self, store):
        # Fig. 1 yields A->B directed, A--C undirected, A--D undirected.
        assert store.num_clusters == 3

    def test_every_edge_stored_twice(self, store):
        assert store.total_column_entries() == 2 * store.num_edges

    def test_compressed_row_bound(self, store):
        assert store.total_compressed_row_entries() <= 4 * store.num_edges

    def test_roundtrip_to_graph(self, store):
        assert store.to_graph() == make_fig1_graph()

    def test_cluster_lookup(self, store):
        cluster = store.cluster_for("A", "B", None, True)
        assert cluster is not None
        # v1 (index 0) has outgoing B-neighbors v2 and v6 (indices 1, 5).
        assert list(cluster.successors(0)) == [1, 5]

    def test_clusters_connecting(self, store):
        assert len(store.clusters_connecting("A", "D")) == 1
        assert store.clusters_connecting("B", "C") == []

    def test_label_frequency(self, store):
        assert store.label_frequency["B"] == 4

    def test_vertices_with_label(self, store):
        assert store.vertices_with_label("C") == [2, 9]


class TestReadCSR:
    """Algorithm 1."""

    @pytest.fixture
    def store(self):
        return CCSRStore(make_fig1_graph())

    def _pattern_ab(self):
        p = Graph()
        p.add_vertices(["A", "B"])
        p.add_edge(0, 1, directed=True)
        return p

    def test_edge_induced_reads_only_pattern_clusters(self, store):
        task = store.read(self._pattern_ab(), "edge_induced")
        assert task.num_clusters == 1
        assert not task.has_impossible_edge()

    def test_missing_cluster_flags_impossible(self, store):
        p = Graph()
        p.add_vertices(["C", "D"])
        p.add_edge(0, 1)
        task = store.read(p, "edge_induced")
        assert task.has_impossible_edge()

    def test_vertex_induced_reads_negation_clusters(self, store):
        p = Graph()
        p.add_vertices(["A", "B", "C"])  # A->B edge, A--C edge, B/C unconnected
        p.add_edge(0, 1, directed=True)
        p.add_edge(0, 2)
        task = store.read(p, "vertex_induced")
        # B--C has no clusters, so the only negation candidates involve the
        # connected pairs' unused orientations — none here.
        assert not task.has_negation_between(1, 2)

    def test_negation_for_unconnected_same_label_pair(self, store):
        p = Graph()
        p.add_vertices(["A", "B", "A"])  # two As unconnected? A0->B, A2->B
        p.add_edge(0, 1, directed=True)
        p.add_edge(2, 1, directed=True)
        task = store.read(p, "vertex_induced")
        # No A--A clusters exist in fig1, so no negation probes needed.
        assert not task.has_negation_between(0, 2)

    def test_negation_probes_fire_on_existing_cluster(self):
        g = Graph()
        g.add_vertices(["A", "A", "A"])
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        p = Graph()
        p.add_vertices(["A", "A", "A"])
        p.add_edge(0, 1)
        p.add_edge(1, 2)  # 0 and 2 unconnected in the pattern
        task = CCSRStore(g).read(p, "vertex_induced")
        assert task.has_negation_between(0, 2)
        checks = task.checks_between(0, 2)
        assert len(checks) == 1
        # The data edge 0--1 exists, so a probe on (0, 1) is violated.
        assert checks[0].violated(0, 1)
        assert not checks[0].violated(0, 2)

    def test_read_records_overhead(self, store):
        task = store.read(self._pattern_ab(), "edge_induced")
        assert task.read_seconds >= 0.0
        assert task.bytes_read > 0

    def test_data_vertex_labels_attached(self, store):
        task = store.read(self._pattern_ab(), "edge_induced")
        assert task.data_vertex_labels == store.vertex_labels


class TestStoreComplexityProperties:
    def test_column_entries_invariant_random(self):
        from repro.graph.generators import erdos_renyi

        for seed in range(5):
            g = erdos_renyi(40, 80, num_labels=4, seed=seed)
            store = CCSRStore(g)
            assert store.total_column_entries() == 2 * g.num_edges
            assert store.total_compressed_row_entries() <= 4 * g.num_edges
            assert store.to_graph() == g

    def test_unlabeled_graph_single_cluster(self):
        g = Graph.from_edges(5, [(0, 1), (1, 2), (3, 4)])
        assert CCSRStore(g).num_clusters == 1

    def test_mixed_direction_two_clusters(self):
        g = Graph()
        g.add_vertices([0, 0, 0])
        g.add_edge(0, 1)
        g.add_edge(1, 2, directed=True)
        assert CCSRStore(g).num_clusters == 2
