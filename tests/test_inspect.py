"""Live-inspection tests: wire protocol, inspector sampling/control,
socket server robustness, CLI surface, and the lossless WorkerSnapshot
encoding (Hypothesis property).

The live tests install a rule-less :class:`FaultInjector` (drops the tick
interval to every node) and a zero-interval heartbeat, so the inspector
publishes on every frame step — dense enough that a handful of embeddings
exercises every sampling path.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import threading
import time

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core import CSCE
from repro.engine import (
    CancelToken,
    ResourceGovernor,
    load_checkpoint,
)
from repro.errors import InspectorError, MatchCancelled, WireError
from repro.graph import Graph
from repro.obs import (
    Observation,
    build_run_report,
    robustness_problems,
    validate_run_report,
)
from repro.obs.inspect import (
    InspectorClient,
    InspectorServer,
    MatchInspector,
    inspect_call,
    render_top,
    resolve_endpoint,
)
from repro.obs.merge import SpanContext, WorkerSnapshot, merge_counters
from repro.obs.progress import Heartbeat
from repro.obs.wire import (
    KNOWN_COMMANDS,
    MAX_FRAME_BYTES,
    WIRE_FORMAT,
    WIRE_VERSION,
    decode_frame,
    decode_response,
    decode_snapshot,
    encode_frame,
    encode_snapshot,
    error_frame,
    ok_frame,
    request_frame,
    validate_request,
)
from repro.testing.faults import FaultInjector

from conftest import make_random_graph


@pytest.fixture
def graph():
    return make_random_graph(40, 110, num_labels=2, seed=5)


def square():
    return Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])


class LiveRun:
    """A streaming match with a dense-ticking inspector attached."""

    def __init__(self, graph, tmp_path, checkpoint=False, address=None):
        self.injector = FaultInjector().install()  # tick every node
        self.engine = CSCE(graph)
        self.obs = Observation(heartbeat_interval=0.0)
        self.governor = ResourceGovernor(cancel=CancelToken(), obs=self.obs)
        self.checkpoint_path = tmp_path / "live-ck.json"
        self.stream = self.engine.match_iter(
            square(),
            "edge_induced",
            obs=self.obs,
            governor=self.governor,
            time_limit=300.0,
            checkpoint_path=self.checkpoint_path if checkpoint else None,
        )
        self.inspector = MatchInspector(
            self.stream,
            self.obs,
            governor=self.governor,
            worker="test-worker",
            checkpoint_factory=lambda path: __import__(
                "repro.engine.checkpoint", fromlist=["CheckpointSink"]
            ).CheckpointSink(
                path, self.engine.store, square(), "edge_induced", "csce"
            ),
            default_checkpoint_path=str(tmp_path / "default-ck.json"),
        ).attach()
        self.server = InspectorServer(
            self.inspector,
            str(address if address is not None else tmp_path / "insp.sock"),
        ).start()

    def drain(self, pace=0.0):
        embeddings = []
        for embedding in self.stream:
            embeddings.append(embedding)
            if pace:
                time.sleep(pace)
        result = self.stream.result()
        self.inspector.finish(result)
        return embeddings, result

    def close(self):
        self.server.stop()
        self.stream.close()
        self.injector.uninstall()


@pytest.fixture
def live(graph, tmp_path):
    run = LiveRun(graph, tmp_path)
    yield run
    run.close()


# ---------------------------------------------------------------------------
# Wire protocol units
# ---------------------------------------------------------------------------
class TestWire:
    def test_frame_round_trip(self):
        frame = request_frame("status", {"a": 1})
        assert decode_frame(encode_frame(frame)) == frame
        assert encode_frame(frame).endswith(b"\n")

    def test_request_frame_rejects_unknown_command(self):
        with pytest.raises(WireError, match="unknown command"):
            request_frame("definitely-not-a-command")

    def test_every_known_command_builds_a_request(self):
        for cmd in KNOWN_COMMANDS:
            cmd_name, args = validate_request(request_frame(cmd))
            assert cmd_name == cmd
            assert args == {}

    def test_decode_rejects_garbage(self):
        for bad in (b"", b"   \n", b"not json\n", b"[1, 2]\n", b'"str"\n'):
            with pytest.raises(WireError):
                decode_frame(bad)
        with pytest.raises(WireError, match="UTF-8"):
            decode_frame(b"\xff\xfe\n")

    def test_oversized_frames_rejected_both_ways(self):
        with pytest.raises(WireError, match="exceeds"):
            decode_frame(b"x" * (MAX_FRAME_BYTES + 1))
        with pytest.raises(WireError, match="exceeds"):
            encode_frame({"blob": "x" * MAX_FRAME_BYTES})

    def test_nan_rejected(self):
        with pytest.raises(WireError, match="serializable"):
            encode_frame({"v": float("nan")})

    def test_validate_request_rejects_foreign_frames(self):
        with pytest.raises(WireError, match="format"):
            validate_request({"format": "other", "version": WIRE_VERSION})
        with pytest.raises(WireError, match="version"):
            validate_request({"format": WIRE_FORMAT, "version": 99,
                              "cmd": "status"})
        with pytest.raises(WireError, match="unknown command"):
            validate_request({"format": WIRE_FORMAT,
                              "version": WIRE_VERSION, "cmd": "nope"})
        with pytest.raises(WireError, match="args"):
            validate_request({"format": WIRE_FORMAT,
                              "version": WIRE_VERSION, "cmd": "status",
                              "args": [1]})

    def test_decode_response_unwraps_and_raises(self):
        assert decode_response(ok_frame("status", {"x": 1})) == {"x": 1}
        with pytest.raises(InspectorError, match="boom"):
            decode_response(error_frame("boom", cmd="status"))
        # WireError subclasses InspectorError: one except clause catches
        # both on the client side.
        assert issubclass(WireError, InspectorError)

    def test_snapshot_stamp_checked(self):
        snap = WorkerSnapshot(worker="w", counters={"nodes": 1})
        payload = encode_snapshot(snap)
        assert decode_snapshot(payload) == snap
        with pytest.raises(WireError, match="format"):
            decode_snapshot({**payload, "format": "other"})
        with pytest.raises(WireError, match="version"):
            decode_snapshot({**payload, "version": 99})
        with pytest.raises(WireError, match="malformed"):
            decode_snapshot({"format": payload["format"],
                             "version": payload["version"]})


# ---------------------------------------------------------------------------
# Registry alignment
# ---------------------------------------------------------------------------
def test_handlers_cover_exactly_the_known_commands():
    assert set(MatchInspector.HANDLERS) == set(KNOWN_COMMANDS)


# ---------------------------------------------------------------------------
# The live inspector over a real socket
# ---------------------------------------------------------------------------
class TestLiveInspection:
    def test_every_command_round_trips_over_the_socket(self, live):
        live.drain()
        address = live.server.endpoint
        for cmd in KNOWN_COMMANDS:
            args = {}
            if cmd == "budget":
                args = {"max_embeddings": 10_000_000}
            data = inspect_call(address, cmd, args)
            assert isinstance(data, dict), cmd

    def test_status_and_progress_sample_the_run(self, live):
        _, result = live.drain()
        status = inspect_call(live.server.endpoint, "status")
        assert status["worker"] == "test-worker"
        assert status["state"] == "finished"
        assert status["emitted"] == result.count
        assert status["pid"] == os.getpid()
        progress = inspect_call(live.server.endpoint, "progress")
        assert 0.0 <= progress["percent"] <= 100.0
        assert progress["updates"] > 0
        assert isinstance(progress["depth_histogram"], dict)

    def test_progress_is_monotone_while_streaming(self, live):
        client = InspectorClient(live.server.endpoint)
        percents = []
        try:
            for _ in live.stream:
                percents.append(client.request("progress")["percent"])
        finally:
            client.close()
        assert len(percents) >= 2
        assert percents == sorted(percents)

    def test_counters_equal_the_final_run_report(self, live):
        _, result = live.drain()
        snap = decode_snapshot(inspect_call(live.server.endpoint, "counters"))
        report = build_run_report(result, engine="CSCE", obs=live.obs)
        assert snap.counters == report["counters"]
        assert snap.stats == dict(result.stats)
        # And the payload is merge-ready: a single-worker merge is exact.
        assert merge_counters(snap.counters) == {
            k: v for k, v in report["counters"].items()
            if isinstance(v, (int, float)) and not isinstance(v, bool)
        }

    def test_recorder_dump_and_tail_limit(self, live):
        live.drain()
        full = inspect_call(live.server.endpoint, "recorder")
        assert full["recorded"] > 0
        assert {e["name"] for e in full["events"]} <= {
            "run_start", "tick", "degrade", "checkpoint", "fault", "stop",
            "run_end",
        }
        tail = inspect_call(live.server.endpoint, "recorder", {"limit": 2})
        assert len(tail["events"]) == 2
        assert tail["events"] == full["events"][-2:]

    def test_cancel_stops_with_a_clean_partial_result(self, live):
        client = InspectorClient(live.server.endpoint)
        embeddings = []
        try:
            for embedding in live.stream:
                embeddings.append(embedding)
                if len(embeddings) == 2:
                    ack = client.request("cancel", {"reason": "test-stop"})
                    assert ack == {"cancelled": True, "reason": "test-stop"}
        finally:
            client.close()
        result = live.stream.result()
        live.inspector.finish(result)
        assert result.stop_reason == "cancelled"
        assert result.count == len(embeddings)
        with pytest.raises(MatchCancelled):
            result.check()
        report = build_run_report(result, engine="CSCE", obs=live.obs)
        validate_run_report(report)  # raises on malformed reports
        assert robustness_problems(report) == []
        status = inspect_call(live.server.endpoint, "status")
        assert status["stop_reason"] == "cancelled"

    def test_budget_embedding_cap_truncates_with_legacy_flag(self, live):
        inspect_call(live.server.endpoint, "budget", {"max_embeddings": 2})
        _, result = live.drain()
        assert result.stop_reason == "embedding_limit"
        assert result.truncated is True
        assert result.count >= 2

    def test_budget_deadline_times_out_with_legacy_flag(self, live):
        inspect_call(live.server.endpoint, "budget", {"time_limit": 1e-9})
        _, result = live.drain()
        assert result.stop_reason == "time_limit"
        assert result.timed_out is True

    def test_budget_rejects_garbage(self, live):
        with pytest.raises(InspectorError, match="at least one"):
            inspect_call(live.server.endpoint, "budget")
        with pytest.raises(InspectorError, match="positive"):
            inspect_call(live.server.endpoint, "budget",
                         {"time_limit": -1})
        with pytest.raises(InspectorError, match="number"):
            inspect_call(live.server.endpoint, "budget",
                         {"max_embeddings": "soon"})

    def test_concurrent_clients_while_streaming(self, graph, tmp_path):
        run = LiveRun(graph, tmp_path)
        try:
            errors = []
            stop = threading.Event()

            def chatter():
                try:
                    with InspectorClient(run.server.endpoint) as client:
                        while not stop.is_set():
                            client.request("status")
                            client.request("stats")
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [
                threading.Thread(target=chatter, daemon=True)
                for _ in range(4)
            ]
            for thread in threads:
                thread.start()
            embeddings, result = run.drain(pace=0.001)
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
            assert not errors
            assert result.stop_reason is None
            # The chatter changed nothing: same count as an undisturbed run.
            baseline = CSCE(graph).match(square(), "edge_induced").count
            assert result.count == len(embeddings) == baseline
        finally:
            run.close()


# ---------------------------------------------------------------------------
# Server robustness: malformed frames, abrupt disconnects, fallback
# ---------------------------------------------------------------------------
class TestServerRobustness:
    def _connect(self, live):
        kind, target = resolve_endpoint(live.server.endpoint)
        if kind == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.connect(target)
        else:
            sock = socket.create_connection(target)
        sock.settimeout(10.0)
        return sock

    def test_malformed_frame_gets_error_frame_not_disconnect(self, live):
        live.drain()
        sock = self._connect(live)
        try:
            reader = sock.makefile("rb")
            sock.sendall(b"this is not json\n")
            response = decode_frame(reader.readline())
            assert response["ok"] is False
            assert "JSON" in response["error"]
            # An unknown command is also survivable.
            sock.sendall(encode_frame(
                {"format": WIRE_FORMAT, "version": WIRE_VERSION,
                 "cmd": "reboot"}
            ))
            response = decode_frame(reader.readline())
            assert response["ok"] is False
            # The connection still serves valid requests afterwards.
            sock.sendall(encode_frame(request_frame("status")))
            data = decode_response(decode_frame(reader.readline()))
            assert data["state"] == "finished"
        finally:
            sock.close()

    def test_abrupt_disconnect_leaves_server_alive(self, live):
        live.drain()
        sock = self._connect(live)
        sock.sendall(b'{"format": "repro-ins')  # partial frame, then gone
        sock.close()
        time.sleep(0.05)
        assert inspect_call(live.server.endpoint, "status")["state"] == \
            "finished"
        assert inspect_call(live.server.endpoint, "status")["clients"] == 0

    def test_handler_bug_is_an_error_frame(self, live, monkeypatch):
        live.drain()

        def explode(args):
            raise RuntimeError("kaboom")

        monkeypatch.setattr(live.inspector, "_cmd_status", explode)
        with pytest.raises(InspectorError, match="internal error: kaboom"):
            inspect_call(live.server.endpoint, "status")
        # ...and the match/server survive it.
        assert inspect_call(live.server.endpoint, "progress")["updates"] > 0

    def test_tcp_fallback_via_pointer_file(self, graph, tmp_path):
        # A path too long for AF_UNIX (~104 byte limit) forces the TCP
        # loopback fallback; the same address string still resolves.
        deep = tmp_path / ("deep-" + "x" * 120)
        run = LiveRun(graph, tmp_path, address=deep)
        try:
            assert run.server.endpoint != str(deep)
            host, port = run.server.endpoint.rsplit(":", 1)
            assert host == "127.0.0.1" and int(port) > 0
            assert deep.is_file()  # the pointer file
            run.drain()
            # Clients resolve the pointer file and the literal host:port.
            assert inspect_call(str(deep), "status")["state"] == "finished"
            assert inspect_call(run.server.endpoint, "status")[
                "worker"] == "test-worker"
        finally:
            run.close()
        assert not deep.exists()  # stop() removes the pointer file

    def test_resolve_endpoint_rejects_nonsense(self, tmp_path):
        with pytest.raises(InspectorError, match="no inspector"):
            resolve_endpoint(str(tmp_path / "missing.sock"))
        bogus = tmp_path / "bogus.txt"
        bogus.write_text("hello world\n")
        with pytest.raises(InspectorError, match="not an inspector"):
            resolve_endpoint(str(bogus))


# ---------------------------------------------------------------------------
# checkpoint-now: resumable mid-run snapshots
# ---------------------------------------------------------------------------
class TestCheckpointNow:
    def test_mid_run_checkpoint_resumes_to_full_count(self, graph, tmp_path):
        full = CSCE(graph).match(square(), "edge_induced").count
        assert full > 4
        run = LiveRun(graph, tmp_path, checkpoint=True)
        try:
            # checkpoint-now blocks until the executor's next tick, so the
            # request must come from a side thread while this thread keeps
            # driving the stream.
            box = {}

            def take():
                box["info"] = inspect_call(
                    run.server.endpoint, "checkpoint-now"
                )

            thread = None
            for i, _ in enumerate(run.stream):
                if i == 2:
                    thread = threading.Thread(target=take, daemon=True)
                    thread.start()
                if thread is not None:
                    if not thread.is_alive():
                        break
                    time.sleep(0.001)  # let the request land mid-run
            assert thread is not None
            thread.join(timeout=30)
            taken = box.get("info")
            assert taken is not None
            assert taken["written"] is True
            assert taken["on_demand"] == 1
            assert taken["path"] == str(run.checkpoint_path)
            doc = load_checkpoint(run.checkpoint_path)
            assert doc["progress"]["emitted"] == taken["emitted"]
            # Abandon the live run; resume from the on-demand snapshot.
            run.stream.close()
            _, resumed = _drain(CSCE(graph).resume(run.checkpoint_path))
            assert resumed.stop_reason is None
            assert resumed.count == full
        finally:
            run.close()

    def test_caller_path_and_default_path(self, live, tmp_path):
        live.drain()
        target = tmp_path / "explicit.json"
        info = inspect_call(
            live.server.endpoint, "checkpoint-now", {"path": str(target)}
        )
        assert info["written"] is True and target.exists()
        # No stream sink on this run, so no-path requests fall back to
        # the inspector's default checkpoint path.
        info = inspect_call(live.server.endpoint, "checkpoint-now")
        assert info["path"].endswith("default-ck.json")
        assert os.path.exists(info["path"])
        status = inspect_call(live.server.endpoint, "status")
        assert status["checkpoint"]["on_demand"] >= 1

    def test_no_target_is_a_clean_error(self, graph, tmp_path):
        run = LiveRun(graph, tmp_path)
        run.inspector.checkpoint_factory = None
        run.inspector.default_checkpoint_path = None
        try:
            run.drain()
            with pytest.raises(InspectorError, match="no checkpoint"):
                inspect_call(run.server.endpoint, "checkpoint-now")
        finally:
            run.close()

    def test_sigusr2_queues_a_checkpoint(self, live):
        if not hasattr(signal, "SIGUSR2"):
            pytest.skip("no SIGUSR2 on this platform")
        from repro.cli import _install_sigusr2

        installed = _install_sigusr2(live.inspector)
        assert installed is not None
        try:
            os.kill(os.getpid(), signal.SIGUSR2)
            # The handler only queues; the next tick (here: the drain's
            # dense ticking) services the request.
            live.drain()
        finally:
            signal.signal(*installed)
        checkpoint = live.inspector.last_checkpoint
        assert checkpoint is not None and checkpoint["written"]
        assert checkpoint["path"].endswith("default-ck.json")

    def test_on_demand_checkpoint_block_passes_robustness(self, live):
        _, result = live.drain()
        inspect_call(live.server.endpoint, "checkpoint-now")
        report = build_run_report(
            result, engine="CSCE", obs=live.obs,
            checkpoint={"path": "x.json", "written": True, "on_demand": 1},
        )
        assert robustness_problems(report) == []
        # Without the on_demand marker the old contract still holds:
        # a written checkpoint on an unstopped run is a problem.
        report = build_run_report(
            result, engine="CSCE", obs=live.obs,
            checkpoint={"path": "x.json", "written": True},
        )
        problems = robustness_problems(report)
        assert any("stop_reason" in p for p in problems)


def _drain(stream):
    embeddings = list(stream)
    return embeddings, stream.result()


# ---------------------------------------------------------------------------
# Heartbeat hardening (satellite: a bad listener cannot kill the match)
# ---------------------------------------------------------------------------
class TestHeartbeatHardening:
    def test_raising_listener_is_detached_not_fatal(self):
        heartbeat = Heartbeat(interval=0.0, emit=lambda line: None)
        calls = []

        def bad():
            raise RuntimeError("broken observer")

        heartbeat.add_listener(bad)
        heartbeat.add_listener(lambda: calls.append(1))
        assert heartbeat.beat(1, 0) is True  # no exception escapes
        assert calls == [1]
        assert bad not in heartbeat.listeners
        heartbeat.beat(2, 0)
        assert calls == [1, 1]

    def test_inspector_survives_a_poisoned_sibling_listener(
        self, graph, tmp_path
    ):
        run = LiveRun(graph, tmp_path)
        try:
            run.obs.heartbeat.listeners.insert(
                0, lambda: (_ for _ in ()).throw(RuntimeError("sibling"))
            )
            _, result = run.drain()
            assert result.stop_reason is None
            status = inspect_call(run.server.endpoint, "status")
            assert status["emitted"] == result.count
        finally:
            run.close()


# ---------------------------------------------------------------------------
# render_top
# ---------------------------------------------------------------------------
def test_render_top_composes_the_live_view():
    text = render_top(
        {
            "worker": "w0", "state": "running", "pid": 42, "clients": 2,
            "emitted": 1000, "nodes": 5000, "beats": 7,
            "elapsed_seconds": 3.25,
            "degradation": ["evict_memo", "disable_memo"],
            "budget": {"time_limit": 60.0, "max_embeddings": None,
                       "memory_limit_mb": 512.0},
            "checkpoint": {"path": "ck.json", "emitted": 900},
            "hot_clusters": [{"key": "(1, 0)", "rows": 10, "bytes": 80}],
            "stop_reason": None,
        },
        {"percent": 25.0, "eta_seconds": 9.75,
         "depth_histogram": {"2": 3, "10": 1}},
    )
    assert "w0 [running]" in text and "clients 2" in text
    assert " 25.00%" in text and "ETA 10s" in text
    bar_line = text.splitlines()[1]
    assert bar_line.count("#") == 12  # 25% of width 50
    assert "embeddings 1000" in text and "beats 7" in text
    assert "depth frontier: 2:3 10:1" in text
    assert "evict_memo > disable_memo" in text
    assert "time 60s" in text and "memory 512 MiB" in text
    assert "ck.json" in text and "(1, 0)" in text


def test_render_top_handles_empty_and_finished():
    text = render_top({"state": "finished", "stop_reason": "cancelled"})
    assert "[finished]" in text
    assert "stopped     : cancelled" in text
    assert "ETA --" in text
    assert "degradation : none" in text


# ---------------------------------------------------------------------------
# CLI surface: csce match --inspect / csce inspect / csce top
# ---------------------------------------------------------------------------
class TestCli:
    def _write_graphs(self, graph, tmp_path):
        from repro.graph.io import format_graph_text

        data = tmp_path / "data.graph"
        pat = tmp_path / "pattern.graph"
        data.write_text(format_graph_text(graph))
        pat.write_text(format_graph_text(square()))
        return data, pat

    def test_inspect_requires_csce(self, graph, tmp_path, capsys):
        from repro.cli import main

        data, pat = self._write_graphs(graph, tmp_path)
        code = main([
            "match", "--data", str(data), "--pattern", str(pat),
            "--engine", "VF3", "--inspect", str(tmp_path / "s.sock"),
        ])
        assert code == 2
        assert "--inspect require" in capsys.readouterr().err

    def test_match_inspect_cancel_end_to_end(self, tmp_path, capsys):
        """The CI smoke, in-process: serve, query, cancel, clean exit."""
        from repro.cli import main

        sock = tmp_path / "cli.sock"
        report = tmp_path / "report.json"
        rc = {}

        def run_match():
            # dip dense-8 homomorphic enumerates ~1e10 embeddings: the
            # run cannot end on its own before cancel lands.
            rc["code"] = main([
                "match", "--dataset", "dip", "--scale", "1.0",
                "--pattern-size", "8", "--pattern-style", "dense",
                "--variant", "homomorphic", "--time-limit", "300",
                "--inspect", str(sock), "--report", str(report),
            ])

        thread = threading.Thread(target=run_match, daemon=True)
        thread.start()
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline and not sock.exists():
            time.sleep(0.1)
        assert sock.exists(), "inspector socket never appeared"
        status = None
        while time.monotonic() < deadline:
            try:
                status = inspect_call(str(sock), "status")
                if status["beats"] > 0 and status["emitted"] > 0:
                    break
            except InspectorError:
                pass
            time.sleep(0.1)
        assert status is not None and status["state"] == "running"
        assert status["beats"] > 0 and status["emitted"] > 0
        assert main(["inspect", str(sock), "progress", "--json"]) == 0
        assert main(["top", str(sock), "--once"]) == 0
        out = capsys.readouterr().out
        assert "csce top" in out and "depth frontier" in out
        assert main([
            "inspect", str(sock), "cancel", "--reason", "cli-test",
        ]) == 0
        thread.join(timeout=120)
        assert not thread.is_alive(), "match did not stop after cancel"
        assert rc["code"] == 0
        doc = json.loads(report.read_text())
        assert doc["stop_reason"] == "cancelled"
        capsys.readouterr()

    def test_inspect_client_error_paths(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["inspect", str(tmp_path / "gone.sock"), "status"])
        assert code == 1
        assert "no inspector" in capsys.readouterr().err
        code = main(["top", str(tmp_path / "gone.sock"), "--once"])
        assert code == 1
        assert "no inspector" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Hypothesis: the WorkerSnapshot wire encoding is lossless
# ---------------------------------------------------------------------------
_names = st.text(
    st.characters(min_codepoint=32, max_codepoint=0x10FFFF,
                  blacklist_categories=("Cs",)),
    min_size=1, max_size=20,
)
_numbers = st.one_of(
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
)
_tables = st.dictionaries(_names, _numbers, max_size=8)
_contexts = st.one_of(
    st.none(),
    st.builds(
        SpanContext,
        trace_id=_names,
        span_id=_names,
        parent_id=st.one_of(st.none(), _names),
    ),
)
_snapshots = st.builds(
    WorkerSnapshot,
    worker=_names,
    counters=_tables,
    stats=_tables,
    context=_contexts,
    workers=st.lists(_names, min_size=0, max_size=4).map(tuple),
)


@settings(max_examples=200, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(_snapshots)
def test_worker_snapshot_wire_encoding_is_lossless(snapshot):
    over_the_wire = decode_frame(
        encode_frame(ok_frame("stats", encode_snapshot(snapshot)))
    )
    assert decode_snapshot(decode_response(over_the_wire)) == snapshot
