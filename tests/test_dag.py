"""Unit tests for DependencyDAG and BuildDAG (Algorithm 2)."""

import pytest

from repro.ccsr import CCSRStore
from repro.core import Variant, build_dag
from repro.core.dag import DependencyDAG
from repro.errors import PlanError
from repro.graph import Graph


class TestDependencyDAG:
    def test_add_and_query(self):
        dag = DependencyDAG(range(3))
        dag.add_edge(0, 1)
        assert dag.has_edge(0, 1)
        assert not dag.has_edge(1, 0)
        assert dag.num_edges == 1

    def test_self_loop_rejected(self):
        dag = DependencyDAG(range(2))
        with pytest.raises(PlanError):
            dag.add_edge(1, 1)

    def test_sources_and_sinks(self):
        dag = DependencyDAG(range(3))
        dag.add_edge(0, 1)
        dag.add_edge(1, 2)
        assert dag.sources() == [0]
        assert dag.sinks() == [2]

    def test_topological_order(self):
        dag = DependencyDAG(range(4))
        dag.add_edge(0, 1)
        dag.add_edge(0, 2)
        dag.add_edge(1, 3)
        order = list(dag.topological_order())
        assert dag.is_topological_order(order)

    def test_cycle_detection(self):
        dag = DependencyDAG(range(2))
        dag.add_edge(0, 1)
        dag.add_edge(1, 0)
        with pytest.raises(PlanError, match="cycle"):
            list(dag.topological_order())

    def test_is_topological_order_rejects_non_permutation(self):
        dag = DependencyDAG(range(3))
        assert not dag.is_topological_order([0, 1])

    def test_reachability(self):
        dag = DependencyDAG(range(4))
        dag.add_edge(0, 1)
        dag.add_edge(1, 2)
        reach = dag.reachability()
        assert reach[0] & (1 << 2)  # 2 reachable from 0 transitively
        assert not reach[0] & (1 << 3)

    def test_independent_pairs(self):
        dag = DependencyDAG(range(4))
        dag.add_edge(0, 1)
        dag.add_edge(0, 2)
        pairs = set(dag.independent_pairs())
        assert (1, 2) in pairs
        assert (0, 3) in pairs
        assert (0, 1) not in pairs

    def test_undirected_components(self):
        dag = DependencyDAG(range(5))
        dag.add_edge(0, 1)
        dag.add_edge(2, 3)
        components = dag.undirected_components([0, 1, 2, 3, 4])
        assert sorted(map(tuple, components)) == [(0, 1), (2, 3), (4,)]

    def test_undirected_components_restricted(self):
        dag = DependencyDAG(range(3))
        dag.add_edge(0, 1)
        dag.add_edge(1, 2)
        # Removing the middle vertex splits the chain.
        components = dag.undirected_components([0, 2])
        assert sorted(map(tuple, components)) == [(0,), (2,)]

    def test_copy_independent(self):
        dag = DependencyDAG(range(2))
        dag.add_edge(0, 1)
        clone = dag.copy()
        clone.add_edge(1, 0)
        assert dag.num_edges == 1


class TestBuildDAG:
    def _pattern_star(self):
        # Star: center 0, leaves 1..3, all label X.
        return Graph.from_edges(4, [(0, 1), (0, 2), (0, 3)])

    def test_edge_induced_mirrors_pattern_edges(self):
        p = self._pattern_star()
        dag = build_dag(p, [0, 1, 2, 3], Variant.EDGE_INDUCED)
        assert dag.num_edges == p.num_edges
        assert dag.has_edge(0, 1) and dag.has_edge(0, 2) and dag.has_edge(0, 3)

    def test_edges_oriented_by_order(self):
        p = self._pattern_star()
        dag = build_dag(p, [1, 0, 2, 3], Variant.EDGE_INDUCED)
        assert dag.has_edge(1, 0)  # leaf first: dependency flows leaf -> center

    def test_same_dag_for_reordered_independents(self):
        """Section VI: different matching orders can yield the same DAG."""
        p = self._pattern_star()
        a = build_dag(p, [0, 1, 2, 3], Variant.EDGE_INDUCED)
        b = build_dag(p, [0, 3, 1, 2], Variant.EDGE_INDUCED)
        assert a.out == b.out

    def test_order_must_be_permutation(self):
        with pytest.raises(PlanError):
            build_dag(self._pattern_star(), [0, 1, 2], Variant.EDGE_INDUCED)

    def test_vertex_induced_needs_task_clusters(self):
        with pytest.raises(PlanError):
            build_dag(self._pattern_star(), [0, 1, 2, 3], Variant.VERTEX_INDUCED)

    def test_vertex_induced_adds_negation_edges(self):
        g = Graph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        p = Graph.from_edges(3, [(0, 1), (1, 2)])  # path; 0-2 unconnected
        store = CCSRStore(g)
        task = store.read(p, Variant.VERTEX_INDUCED)
        dag = build_dag(p, [0, 1, 2], Variant.VERTEX_INDUCED, task)
        # 0 and 2 share label 0, a 0--0 cluster exists, so negation depends.
        assert dag.has_edge(0, 2)

    def test_vertex_induced_no_negation_without_clusters(self):
        g = Graph()
        g.add_vertices(["A", "B", "C"])
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        p = Graph()
        p.add_vertices(["A", "B", "C"])
        p.add_edge(0, 1)
        p.add_edge(1, 2)
        store = CCSRStore(g)
        task = store.read(p, Variant.VERTEX_INDUCED)
        dag = build_dag(p, [0, 1, 2], Variant.VERTEX_INDUCED, task)
        # No A--C cluster in the data: candidate sets cannot interact.
        assert not dag.has_edge(0, 2)

    def test_paper_faithful_guard_drops_early_negations(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        p = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])  # path of 4
        store = CCSRStore(g)
        task = store.read(p, Variant.VERTEX_INDUCED)
        strict = build_dag(p, [0, 3, 1, 2], Variant.VERTEX_INDUCED, task)
        faithful = build_dag(
            p, [0, 3, 1, 2], Variant.VERTEX_INDUCED, task, paper_faithful=True
        )
        # Position i=1 (vertex 3) has no earlier pattern neighbor of later
        # vertices at k < 1, so the faithful variant records fewer edges.
        assert faithful.num_edges <= strict.num_edges
