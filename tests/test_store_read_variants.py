"""Additional ReadCSR and plan behaviors across variants."""

import pytest

from repro.ccsr import CCSRStore
from repro.core import CSCE, Variant
from repro.graph import Graph

from conftest import make_fig1_graph


class TestReadVariantBehavior:
    def test_homomorphic_reads_no_negations(self):
        store = CCSRStore(make_fig1_graph())
        p = Graph()
        p.add_vertices(["A", "B", "B"])
        p.add_edge(0, 1, directed=True)
        p.add_edge(0, 2, directed=True)
        for variant in ("edge_induced", "homomorphic"):
            task = store.read(p, variant)
            assert task.negation_checks == {}

    def test_vertex_induced_connected_pair_reverse_negation(self):
        """A directed pattern edge A->B forbids a surplus reverse data edge
        B->A under induced semantics."""
        g = Graph()
        g.add_vertices(["A", "B", "A", "B"])
        g.add_edge(0, 1, directed=True)           # forward only
        g.add_edge(2, 3, directed=True)
        g.add_edge(3, 2, directed=True)           # mutual pair
        p = Graph()
        p.add_vertices(["A", "B"])
        p.add_edge(0, 1, directed=True)
        engine = CSCE(g)
        assert engine.count(p, "edge_induced") == 2   # both pairs match
        assert engine.count(p, "vertex_induced") == 1  # mutual pair excluded

    def test_vertex_induced_edge_label_surplus(self):
        """Same pair, second parallel edge with another label is surplus."""
        g = Graph()
        g.add_vertices(["A", "B", "A", "B"])
        g.add_edge(0, 1, label="x")
        g.add_edge(2, 3, label="x")
        g.add_edge(2, 3, label="y")
        p = Graph()
        p.add_vertices(["A", "B"])
        p.add_edge(0, 1, label="x")
        engine = CSCE(g)
        assert engine.count(p, "edge_induced") == 2
        assert engine.count(p, "vertex_induced") == 1

    def test_read_twice_is_idempotent(self):
        store = CCSRStore(make_fig1_graph())
        p = Graph()
        p.add_vertices(["A", "B"])
        p.add_edge(0, 1, directed=True)
        first = store.read(p, Variant.EDGE_INDUCED)
        second = store.read(p, Variant.EDGE_INDUCED)
        assert first.num_clusters == second.num_clusters
        # Second read touches already-decompressed clusters: fewer bytes.
        assert second.bytes_read <= first.bytes_read

    def test_plan_reuse_gives_fresh_results(self, square_with_diagonal):
        engine = CSCE(square_with_diagonal)
        p = Graph.from_edges(3, [(0, 1), (1, 2)])
        plan = engine.build_plan(p, Variant.EDGE_INDUCED)
        first = engine.match(p, Variant.EDGE_INDUCED, plan=plan)
        second = engine.match(p, Variant.EDGE_INDUCED, plan=plan)
        assert first.count == second.count == 16
        assert first.embeddings == second.embeddings


class TestStoreSharedBetweenEngines:
    def test_two_engines_one_store(self):
        store = CCSRStore(make_fig1_graph())
        p = Graph()
        p.add_vertices(["A", "B"])
        p.add_edge(0, 1, directed=True)
        a, b = CSCE(store), CSCE(store)
        assert a.count(p) == b.count(p) == 4

    def test_update_visible_through_shared_store(self):
        store = CCSRStore(make_fig1_graph())
        engine = CSCE(store)
        p = Graph()
        p.add_vertices(["A", "B"])
        p.add_edge(0, 1, directed=True)
        before = engine.count(p)
        store.insert_edge(7, 4, directed=True)  # one more A -> B edge
        assert engine.count(p) == before + 1
