"""Unit tests for graph text I/O."""

import pytest

from repro.errors import FormatError
from repro.graph import Graph, load_graph, parse_graph_text, save_graph
from repro.graph.io import format_graph_text, load_edge_list, write_edge_list


SAMPLE = """\
# comment line
t 3 2
v 0 A
v 1 B
v 2 A
e 0 1 x d
e 1 2
"""


class TestParse:
    def test_parse_sample(self):
        g = parse_graph_text(SAMPLE)
        assert g.num_vertices == 3
        assert g.vertex_labels == ["A", "B", "A"]
        edges = list(g.edges())
        assert edges[0].label == "x" and edges[0].directed
        assert edges[1].label is None and not edges[1].directed

    def test_integer_labels_parse_as_int(self):
        g = parse_graph_text("t 1 0\nv 0 7\n")
        assert g.vertex_label(0) == 7

    def test_dash_edge_label_means_none(self):
        g = parse_graph_text("t 2 1\nv 0 A\nv 1 B\ne 0 1 - u\n")
        assert next(iter(g.edges())).label is None

    def test_header_mismatch_vertices(self):
        with pytest.raises(FormatError, match="declared 5 vertices"):
            parse_graph_text("t 5 0\nv 0 A\n")

    def test_header_mismatch_edges(self):
        with pytest.raises(FormatError, match="declared 3 edges"):
            parse_graph_text("t 2 3\nv 0 A\nv 1 B\ne 0 1\n")

    def test_duplicate_header(self):
        with pytest.raises(FormatError, match="duplicate 't'"):
            parse_graph_text("t 0 0\nt 0 0\n")

    def test_out_of_order_vertex_ids(self):
        with pytest.raises(FormatError, match="consecutive"):
            parse_graph_text("v 1 A\n")

    def test_unknown_record(self):
        with pytest.raises(FormatError, match="unknown record"):
            parse_graph_text("x 1 2\n")

    def test_error_carries_line_number(self):
        with pytest.raises(FormatError, match="line 2"):
            parse_graph_text("v 0 A\ne 0 9\n")

    def test_bad_edge_endpoints(self):
        with pytest.raises(FormatError):
            parse_graph_text("v 0 A\ne 0 x\n")


class TestRoundTrip:
    def test_format_parse_roundtrip(self, fig1_graph):
        assert parse_graph_text(format_graph_text(fig1_graph)) == fig1_graph

    def test_file_roundtrip(self, tmp_path, fig1_graph):
        path = tmp_path / "g.graph"
        save_graph(fig1_graph, path)
        loaded = load_graph(path)
        assert loaded == fig1_graph
        assert loaded.name == "g.graph"

    def test_empty_graph_roundtrip(self):
        g = Graph()
        assert parse_graph_text(format_graph_text(g)) == g


class TestEdgeList:
    def test_load_edge_list(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# header\n1 2\n2 3\n3 1\n1 1\n1 2\n")
        g = load_edge_list(path)
        assert g.num_vertices == 3
        assert g.num_edges == 3  # self-loop and duplicate dropped

    def test_load_edge_list_directed_keeps_reverse(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("1 2\n2 1\n")
        g = load_edge_list(path, directed=True)
        assert g.num_edges == 2

    def test_write_edge_list(self, tmp_path, triangle):
        path = tmp_path / "out.txt"
        write_edge_list(triangle, path)
        reloaded = load_edge_list(path)
        assert reloaded.num_edges == 3

    def test_bad_line(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("1\n")
        with pytest.raises(FormatError):
            load_edge_list(path)


GARBAGE = """\
t 3 2
v 0 A
v one B
v 2 A
e 0 1 x d
e 1 zzz
banana split
"""


class TestLenientParsing:
    """Satellite: ``strict=False`` skips malformed lines with a warning
    counter instead of dying on the first bad byte."""

    def test_strict_default_raises_with_line_number(self):
        with pytest.raises(FormatError) as exc:
            parse_graph_text(GARBAGE)
        assert exc.value.line_number == 3

    def test_lenient_skips_and_counts(self):
        graph = parse_graph_text(GARBAGE, strict=False)
        # Skipping 'v one' cascades: 'v 2' stops being consecutive and
        # both edges reference now-missing vertices. Casualties: 'v one',
        # 'v 2', 'e 0 1' (missing vertex 1), 'e 1 zzz', 'banana', and the
        # two header mismatches — each counted as its own warning.
        assert graph.parse_warnings == 7
        assert graph.num_vertices == 1
        assert graph.num_edges == 0

    def test_lenient_keeps_good_lines(self):
        text = "t 3 2\nv 0 A\nv 1 B\nv 2 A\ne 0 1\nbad line\ne 1 2\n"
        graph = parse_graph_text(text, strict=False)
        assert graph.num_vertices == 3
        assert graph.num_edges == 2
        assert graph.parse_warnings == 1

    def test_clean_file_has_zero_warnings(self):
        graph = parse_graph_text(SAMPLE, strict=False)
        assert graph.parse_warnings == 0

    def test_truncated_file_lenient(self, tmp_path):
        # A header promising more than the (truncated) body delivers.
        path = tmp_path / "trunc.graph"
        path.write_text("t 5 4\nv 0 A\nv 1 B\ne 0 1\n")
        with pytest.raises(FormatError):
            load_graph(path)
        graph = load_graph(path, strict=False)
        assert graph.num_vertices == 2
        assert graph.num_edges == 1
        assert graph.parse_warnings == 2  # vertex + edge header mismatch

    def test_edge_list_lenient(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n1\nnot numbers here\n1 2\n")
        with pytest.raises(FormatError):
            load_edge_list(path)
        graph = load_edge_list(path, strict=False)
        assert graph.num_edges == 2
        assert graph.parse_warnings == 2
