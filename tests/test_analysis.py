"""Unit tests for the clustering case-study substrate."""

import pytest

from repro.analysis import (
    clique_restrictions,
    complete_pattern,
    edge_clustering,
    label_propagation,
    motif_clustering,
    motif_weighted_adjacency,
    pairwise_f1,
)
from repro.datasets import email_eu
from repro.graph import Graph


class TestPairwiseF1:
    def test_perfect_match(self):
        assert pairwise_f1([0, 0, 1, 1], [5, 5, 9, 9]) == 1.0

    def test_singletons_score_zero(self):
        assert pairwise_f1([0, 1, 2, 3], [0, 0, 1, 1]) == 0.0

    def test_partial_overlap(self):
        score = pairwise_f1([0, 0, 0, 1], [0, 0, 1, 1])
        assert 0.0 < score < 1.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pairwise_f1([0], [0, 1])

    def test_symmetry(self):
        a, b = [0, 0, 1, 1, 2], [0, 1, 1, 2, 2]
        assert pairwise_f1(a, b) == pairwise_f1(b, a)


class TestCompletePattern:
    def test_clique_shape(self):
        k5 = complete_pattern(5)
        assert k5.num_vertices == 5
        assert k5.num_edges == 10

    def test_clique_restrictions_chain(self):
        assert clique_restrictions(4) == ((0, 1), (1, 2), (2, 3))


class TestLabelPropagation:
    def test_two_cliques_split(self):
        # Two 4-cliques joined by one bridge edge.
        edges = [(a, b) for a in range(4) for b in range(a + 1, 4)]
        edges += [(a, b) for a in range(4, 8) for b in range(a + 1, 8)]
        edges.append((0, 4))
        g = Graph.from_edges(8, edges)
        adjacency = {v: {w: 1.0 for w in g.neighbors(v)} for v in g.vertices()}
        labels = label_propagation(8, adjacency)
        assert len({labels[v] for v in range(4)}) == 1
        assert len({labels[v] for v in range(4, 8)}) == 1
        assert labels[0] != labels[7]

    def test_empty_adjacency_keeps_singletons(self):
        assert label_propagation(3, {}) == [0, 1, 2]


class TestMotifClustering:
    @pytest.fixture(scope="class")
    def email(self):
        return email_eu(num_departments=4, department_size=10, seed=7)

    def test_motif_weights_come_from_cliques(self, email):
        graph, _ = email
        adjacency, num_cliques = motif_weighted_adjacency(graph, k=3)
        assert num_cliques > 0
        # Weights are symmetric.
        for a, nbrs in adjacency.items():
            for b, w in nbrs.items():
                assert adjacency[b][a] == w

    def test_motif_beats_edges_on_planted_partition(self, email):
        graph, truth = email
        edge_f1 = pairwise_f1(edge_clustering(graph), truth)
        motif = motif_clustering(graph, k=4)
        motif_f1 = pairwise_f1(motif.labels, truth)
        # The paper's case-study shape: higher-order wins.
        assert motif_f1 > edge_f1

    def test_result_records_motif_count_and_time(self, email):
        graph, _ = email
        result = motif_clustering(graph, k=3)
        assert result.num_motifs > 0
        assert result.seconds > 0
        assert result.method == "3-clique"

    def test_custom_finder_hook(self, email):
        graph, _ = email
        from repro.baselines import BacktrackingMatcher
        from repro.analysis.motif_clustering import clique_restrictions

        matcher = BacktrackingMatcher(graph)

        def finder(pattern):
            return matcher.match(
                pattern,
                "edge_induced",
                restrictions=clique_restrictions(pattern.num_vertices),
            ).embeddings

        via_baseline = motif_clustering(graph, k=3, find_embeddings=finder)
        via_csce = motif_clustering(graph, k=3)
        assert via_baseline.num_motifs == via_csce.num_motifs
