"""Integration tests: CSCE vs independent oracles and vs every baseline.

These are the suite's strongest correctness guarantees: networkx's VF2 and
exhaustive brute-force enumeration never share code with the library.
"""

import random

import pytest

from repro.baselines import (
    BacktrackingMatcher,
    FailingSetMatcher,
    VF2Matcher,
    WCOJMatcher,
)
from repro.core import CSCE
from repro.graph.generators import erdos_renyi, random_edge_labels
from repro.graph.sampling import sample_pattern

from conftest import brute_count, make_random_graph, networkx_counts


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(8))
    def test_undirected_labeled(self, seed):
        rng = random.Random(seed)
        g = erdos_renyi(
            14, rng.randint(16, 30), num_labels=rng.choice([0, 2, 3]), seed=seed
        )
        try:
            p = sample_pattern(g, rng.choice([3, 4, 5]), rng=seed)
        except Exception:
            pytest.skip("sampling failed on fragmented graph")
        engine = CSCE(g)
        nx_vi, nx_ei = networkx_counts(g, p)
        assert engine.match(p, "vertex_induced", count_only=True).count == nx_vi
        assert engine.match(p, "edge_induced", count_only=True).count == nx_ei
        assert engine.match(p, "vertex_induced").count == nx_vi
        assert engine.match(p, "edge_induced").count == nx_ei


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize(
        "variant", ["edge_induced", "vertex_induced", "homomorphic"]
    )
    def test_directed_edge_labeled(self, seed, variant):
        rng = random.Random(100 + seed)
        g = erdos_renyi(
            9,
            rng.randint(10, 18),
            num_labels=rng.choice([0, 2]),
            directed=seed % 2 == 0,
            seed=seed,
        )
        if seed % 3 == 0:
            g = random_edge_labels(g, 2, seed=seed)
        try:
            p = sample_pattern(g, 3, rng=seed)
        except Exception:
            pytest.skip("sampling failed")
        engine = CSCE(g)
        expected = brute_count(g, p, variant)
        assert engine.match(p, variant, count_only=True).count == expected
        assert engine.match(p, variant).count == expected
        assert (
            engine.match(p, variant, count_only=True, use_sce=False).count
            == expected
        )


class TestEnginesAgree:
    """Every engine pair must agree on every supported task."""

    @pytest.mark.parametrize("seed", range(4))
    def test_edge_induced_consensus(self, seed):
        g = make_random_graph(13, 28, num_labels=2, seed=40 + seed)
        try:
            p = sample_pattern(g, 5, rng=seed)
        except Exception:
            pytest.skip("sampling failed")
        counts = {
            "csce": CSCE(g).count(p, "edge_induced"),
            "backtracking": BacktrackingMatcher(g).count(p, "edge_induced"),
            "wcoj": WCOJMatcher(g).count(p, "edge_induced"),
            "failing_set": FailingSetMatcher(g).count(p, "edge_induced"),
        }
        assert len(set(counts.values())) == 1, counts

    @pytest.mark.parametrize("seed", range(4))
    def test_vertex_induced_consensus(self, seed):
        g = make_random_graph(13, 28, num_labels=2, seed=50 + seed)
        try:
            p = sample_pattern(g, 4, rng=seed)
        except Exception:
            pytest.skip("sampling failed")
        counts = {
            "csce": CSCE(g).count(p, "vertex_induced"),
            "backtracking": BacktrackingMatcher(g).count(p, "vertex_induced"),
            "vf2": VF2Matcher(g).count(p, "vertex_induced"),
        }
        assert len(set(counts.values())) == 1, counts

    @pytest.mark.parametrize("seed", range(4))
    def test_homomorphic_consensus(self, seed):
        g = make_random_graph(11, 24, num_labels=2, seed=60 + seed)
        try:
            p = sample_pattern(g, 4, rng=seed)
        except Exception:
            pytest.skip("sampling failed")
        counts = {
            "csce": CSCE(g).count(p, "homomorphic"),
            "backtracking": BacktrackingMatcher(g).count(p, "homomorphic"),
            "wcoj": WCOJMatcher(g).count(p, "homomorphic"),
        }
        assert len(set(counts.values())) == 1, counts


class TestVariantContainment:
    """Vertex-induced embeddings are a subset of edge-induced ones, which
    embed into the homomorphic count (Section II)."""

    @pytest.mark.parametrize("seed", range(5))
    def test_count_ordering(self, seed):
        g = make_random_graph(12, 26, num_labels=2, seed=70 + seed)
        try:
            p = sample_pattern(g, 4, rng=seed)
        except Exception:
            pytest.skip("sampling failed")
        engine = CSCE(g)
        vi = engine.count(p, "vertex_induced")
        ei = engine.count(p, "edge_induced")
        homo = engine.count(p, "homomorphic")
        assert vi <= ei <= homo

    @pytest.mark.parametrize("seed", range(3))
    def test_vertex_induced_embeddings_subset(self, seed):
        g = make_random_graph(10, 22, seed=80 + seed)
        try:
            p = sample_pattern(g, 4, rng=seed)
        except Exception:
            pytest.skip("sampling failed")
        engine = CSCE(g)
        vi = {
            tuple(sorted(m.items()))
            for m in engine.match(p, "vertex_induced").embeddings
        }
        ei = {
            tuple(sorted(m.items()))
            for m in engine.match(p, "edge_induced").embeddings
        }
        assert vi <= ei


class TestLargerPatterns:
    """Large patterns (the paper's focus) on labeled graphs, CSCE against
    the failing-set baseline."""

    @pytest.mark.parametrize("size", [8, 10, 12])
    def test_large_labeled_patterns(self, size):
        g = erdos_renyi(200, 700, num_labels=8, seed=size)
        try:
            p = sample_pattern(g, size, rng=size)
        except Exception:
            pytest.skip("sampling failed")
        engine = CSCE(g)
        csce_count = engine.match(
            p, "edge_induced", count_only=True, time_limit=30
        )
        baseline = FailingSetMatcher(g).match(
            p, "edge_induced", count_only=True, time_limit=30
        )
        if csce_count.timed_out or baseline.timed_out:
            pytest.skip("too slow on this host")
        assert csce_count.count == baseline.count
