"""Tests for the resource governor: unified budgets, the cooperative
cancel token, the memory degradation ladder, and the stop-reason /
partial-count contract shared by every execution path."""

import tracemalloc

import pytest

from repro.core import CSCE
from repro.engine import (
    STOP_CANCELLED,
    STOP_EMBEDDING_LIMIT,
    STOP_MEMORY_LIMIT,
    STOP_REASONS,
    STOP_TIME_LIMIT,
    Budget,
    CancelToken,
    ResourceGovernor,
)
from repro.engine.governor import (
    DEGRADE_DISABLE,
    DEGRADE_EVICT,
    DEGRADE_SUSPEND,
)
from repro.errors import (
    EmbeddingLimitExceeded,
    MatchCancelled,
    MemoryLimitExceeded,
    TimeLimitExceeded,
)
from repro.graph import Graph
from repro.obs import Observation
from repro.obs.report import _DEGRADATION_EVENTS, _STOP_REASONS
from repro.testing import FaultInjector, memory_spike, slowdown

from conftest import make_random_graph


@pytest.fixture
def graph():
    return make_random_graph(30, 80, num_labels=2, seed=3)


@pytest.fixture
def engine(graph):
    return CSCE(graph)


def square():
    return Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])


class TestBudget:
    def test_default_is_unlimited(self):
        assert Budget().unlimited
        assert not Budget(time_limit=1.0).unlimited
        assert not Budget(memory_limit_mb=64.0).unlimited

    def test_effective_deadline_takes_tighter_limit(self):
        gov = ResourceGovernor(budget=Budget(time_limit=100.0))
        assert gov.effective_deadline(None) is not None
        # The per-run option is tighter than the budget here.
        import time

        tight = gov.effective_deadline(0.001)
        assert tight - time.perf_counter() < 1.0

    def test_effective_cap_takes_min(self):
        gov = ResourceGovernor(budget=Budget(max_embeddings=10))
        assert gov.effective_cap(None) == 10
        assert gov.effective_cap(3) == 3
        assert ResourceGovernor().effective_cap(None) is None


class TestGovernedRuns:
    def test_unlimited_governor_is_transparent(self, engine):
        p = square()
        plain = engine.match(p, "edge_induced")
        governed = engine.match(p, "edge_induced", governor=ResourceGovernor())
        assert governed.count == plain.count
        assert governed.stop_reason is None
        assert governed.degradation == []
        governed.check()  # no-op on complete runs

    def test_budget_embedding_cap(self, engine):
        gov = ResourceGovernor(budget=Budget(max_embeddings=5))
        result = engine.match(square(), "edge_induced", governor=gov)
        assert result.count == 5
        assert result.stop_reason == STOP_EMBEDDING_LIMIT
        assert result.truncated  # legacy flag stays in sync
        with pytest.raises(EmbeddingLimitExceeded) as exc:
            result.check()
        assert exc.value.partial_count == result.count

    def test_budget_time_limit_sets_timed_out(self, engine):
        gov = ResourceGovernor(budget=Budget(time_limit=0.0))
        with FaultInjector(seed=0).on("engine.tick", slowdown(0.001)):
            result = engine.match(square(), "edge_induced", governor=gov)
        assert result.stop_reason == STOP_TIME_LIMIT
        assert result.timed_out
        with pytest.raises(TimeLimitExceeded) as exc:
            result.check()
        assert exc.value.partial_count == result.count

    def test_pretripped_token_returns_empty_valid_result(self, engine):
        token = CancelToken()
        token.trip("test")
        gov = ResourceGovernor(cancel=token)
        result = engine.match(square(), "edge_induced", governor=gov)
        assert result.count == 0
        assert result.stop_reason == STOP_CANCELLED
        assert not result.truncated and not result.timed_out
        with pytest.raises(MatchCancelled):
            result.check()

    def test_token_clear_rearms_for_next_run(self, engine):
        token = CancelToken()
        token.trip()
        gov = ResourceGovernor(cancel=token)
        p = square()
        assert engine.match(p, governor=gov).stop_reason == STOP_CANCELLED
        token.clear()
        reran = engine.match(p, governor=gov)
        assert reran.stop_reason is None
        assert reran.count == engine.match(p).count


class TestDegradationLadder:
    def _pressured(self, engine, times=None):
        """Run with simulated memory pressure at every governor sample."""
        obs = Observation()
        token = CancelToken()
        # The limit is far above the real (tiny) test heap; only the
        # injected 10 GB spike breaches it, so `times` controls exactly
        # how many samples see pressure.
        gov = ResourceGovernor(
            budget=Budget(memory_limit_mb=256.0), cancel=token, obs=obs
        )
        injector = FaultInjector(seed=1).on(
            "governor.memory", memory_spike(10_000.0), times=times
        )
        with injector:
            result = engine.match(square(), "edge_induced", governor=gov)
        return result, obs

    def test_persistent_pressure_climbs_to_suspend(self, engine):
        result, obs = self._pressured(engine)
        assert result.degradation == [
            DEGRADE_EVICT, DEGRADE_DISABLE, DEGRADE_SUSPEND,
        ]
        assert result.stop_reason == STOP_MEMORY_LIMIT
        counters = obs.counters.snapshot()
        assert counters.get("governor_evictions") == 1
        assert counters.get("governor_memo_disabled") == 1
        assert counters.get("governor_suspensions") == 1
        with pytest.raises(MemoryLimitExceeded) as exc:
            result.check()
        assert exc.value.partial_count == result.count

    def test_relieved_pressure_completes_with_correct_count(self, engine):
        # Pressure for exactly one sample: with an empty memo the ladder
        # climbs straight to disable_memo (nothing to evict), pressure
        # lifts, and the run finishes exhaustively with the memo off —
        # same count, degraded mode.
        full = engine.match(square(), "edge_induced").count
        result, _ = self._pressured(engine, times=1)
        assert result.stop_reason is None
        assert result.count == full
        assert result.degradation == [DEGRADE_EVICT, DEGRADE_DISABLE]

    def test_tracing_ownership(self):
        assert not tracemalloc.is_tracing()
        gov = ResourceGovernor(budget=Budget(memory_limit_mb=64.0))
        gov.ensure_tracing()
        assert tracemalloc.is_tracing()
        gov.release()
        assert not tracemalloc.is_tracing()
        # Without a memory budget, tracing never starts.
        plain = ResourceGovernor()
        plain.ensure_tracing()
        assert not tracemalloc.is_tracing()

    def test_does_not_stop_foreign_tracing(self):
        tracemalloc.start()
        try:
            gov = ResourceGovernor(budget=Budget(memory_limit_mb=64.0))
            gov.ensure_tracing()
            gov.release()
            assert tracemalloc.is_tracing()
        finally:
            tracemalloc.stop()


class TestFactorizedStopConsistency:
    """Satellite: LimitExceeded.partial_count must agree with the result
    count on the factorized (count-only) path, including a time-limit trip
    inside the ``_PROD`` stack machine."""

    def _factorizing_task(self):
        # A star pattern over a random graph factorizes into independent
        # leaf regions (the _PROD frames of the counter).
        graph = make_random_graph(40, 120, num_labels=1, seed=11)
        star = Graph.from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)])
        return CSCE(graph), star

    def test_factorized_path_is_used(self):
        engine, star = self._factorizing_task()
        result = engine.match(star, "homomorphic", count_only=True)
        assert result.stats.get("factorizations", 0) > 0
        assert result.stop_reason is None

    def test_time_limit_inside_prod_reports_consistent_partial(self):
        engine, star = self._factorizing_task()
        # Dense ticking (injector installed) + a slowdown on every tick
        # guarantees the deadline trips mid-count, inside _SEQ/_PROD
        # frames rather than before the first one.
        with FaultInjector(seed=2).on("engine.tick", slowdown(0.002), after=3):
            result = engine.match(
                star, "homomorphic", count_only=True, time_limit=0.004,
            )
        full = engine.match(star, "homomorphic", count_only=True).count
        assert result.stop_reason == STOP_TIME_LIMIT
        assert result.timed_out
        # The partial count is a committed prefix: never an overcount.
        assert 0 <= result.count <= full
        with pytest.raises(TimeLimitExceeded) as exc:
            result.check()
        assert exc.value.partial_count == result.count


class TestContractPinning:
    def test_report_literals_match_engine_constants(self):
        # obs.report cannot import the engine (layering), so it carries
        # literal copies of the stop reasons and ladder events. Keep them
        # pinned together.
        assert tuple(_STOP_REASONS) == tuple(STOP_REASONS)
        assert tuple(_DEGRADATION_EVENTS) == (
            DEGRADE_EVICT, DEGRADE_DISABLE, DEGRADE_SUSPEND,
        )
