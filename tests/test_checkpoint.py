"""Checkpoint/resume tests: suspended streams serialize their frame stack
and resume to byte-identical combined counts; mutated stores are refused."""

import json

import pytest

from repro.core import CSCE
from repro.engine import (
    STOP_EMBEDDING_LIMIT,
    load_checkpoint,
    write_checkpoint,
)
from repro.engine.checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    validate_checkpoint,
)
from repro.errors import CheckpointError, PlanError
from repro.graph import Graph

from conftest import make_random_graph

VARIANTS = ("edge_induced", "vertex_induced", "homomorphic")


@pytest.fixture
def graph():
    return make_random_graph(40, 110, num_labels=2, seed=5)


def square():
    return Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])


def drain(stream):
    embeddings = list(stream)
    return embeddings, stream.result()


class TestRoundTrip:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_resume_reaches_exact_full_count(self, graph, tmp_path, variant):
        engine = CSCE(graph)
        p = square()
        full = engine.match(p, variant).count
        if full < 3:
            pytest.skip("pattern too rare in this graph for a mid-run stop")
        path = tmp_path / "ck.json"

        first, interrupted = drain(
            engine.match_iter(
                p, variant, max_embeddings=full // 2, checkpoint_path=path
            )
        )
        assert interrupted.stop_reason == STOP_EMBEDDING_LIMIT
        assert interrupted.count == full // 2
        assert path.exists()

        rest, resumed = drain(engine.resume(path, max_embeddings=None))
        assert resumed.stop_reason is None
        # The resumed result's count is cumulative (prior emitted + new).
        assert resumed.count == full
        assert len(first) + len(rest) == full
        # No embedding is produced twice across the suspend boundary.
        keys = {tuple(sorted(e.items())) for e in first + rest}
        assert len(keys) == full

    def test_repeated_suspend_resume_cycles(self, graph, tmp_path):
        engine = CSCE(graph)
        p = square()
        full = engine.match(p, "edge_induced").count
        assert full > 4
        path = tmp_path / "ck.json"
        step = max(1, full // 4)

        emitted = 0
        stream = engine.match_iter(
            p, "edge_induced", max_embeddings=step, checkpoint_path=path
        )
        for _ in range(20):
            chunk, result = drain(stream)
            emitted += len(chunk)
            if result.stop_reason is None:
                break
            stream = engine.resume(
                path, max_embeddings=emitted + step, checkpoint_path=path
            )
        else:
            pytest.fail("resume loop did not converge")
        assert emitted == full
        assert result.count == full

    def test_resumed_counters_are_cumulative(self, graph, tmp_path):
        engine = CSCE(graph)
        p = square()
        full_result = engine.match(p, "edge_induced", count_only=False)
        path = tmp_path / "ck.json"
        _, interrupted = drain(
            engine.match_iter(p, max_embeddings=2, checkpoint_path=path)
        )
        _, resumed = drain(engine.resume(path, max_embeddings=None))
        assert resumed.stats["nodes"] >= full_result.stats["nodes"]
        assert resumed.stats["nodes"] > interrupted.stats["nodes"]

    def test_completed_stream_writes_no_checkpoint(self, graph, tmp_path):
        engine = CSCE(graph)
        path = tmp_path / "ck.json"
        stream = engine.match_iter(square(), checkpoint_path=path)
        drain(stream)
        assert stream.checkpoint_sink.written is None
        assert not path.exists()

    def test_checkpoint_path_rejects_caller_plan(self, graph, tmp_path):
        engine = CSCE(graph)
        plan = engine.build_plan(square(), "edge_induced")
        with pytest.raises(PlanError, match="session-compiled"):
            engine.match_iter(
                square(), plan=plan, checkpoint_path=tmp_path / "ck.json"
            )


class TestStoreGuard:
    def _checkpoint(self, engine, tmp_path):
        path = tmp_path / "ck.json"
        _, result = drain(
            engine.match_iter(square(), max_embeddings=1, checkpoint_path=path)
        )
        assert result.stop_reason == STOP_EMBEDDING_LIMIT
        return path

    def test_mutated_store_refuses_resume(self, graph, tmp_path):
        engine = CSCE(graph)
        path = self._checkpoint(engine, tmp_path)
        engine.store.insert_vertex(0)
        with pytest.raises(CheckpointError, match="store"):
            engine.resume(path)

    def test_different_store_refuses_resume(self, graph, tmp_path):
        engine = CSCE(graph)
        path = self._checkpoint(engine, tmp_path)
        other = CSCE(make_random_graph(40, 110, num_labels=2, seed=6))
        with pytest.raises(CheckpointError):
            other.resume(path)

    def test_unchanged_store_resumes(self, graph, tmp_path):
        engine = CSCE(graph)
        path = self._checkpoint(engine, tmp_path)
        _, resumed = drain(engine.resume(path, max_embeddings=None))
        assert resumed.stop_reason is None


class TestDocumentValidation:
    def _valid_doc(self, graph, tmp_path):
        engine = CSCE(graph)
        path = tmp_path / "ck.json"
        drain(engine.match_iter(square(), max_embeddings=1,
                                checkpoint_path=path))
        return engine, path, load_checkpoint(path)

    def test_load_checkpoint_validates(self, graph, tmp_path):
        _, _, doc = self._valid_doc(graph, tmp_path)
        assert doc["format"] == CHECKPOINT_FORMAT
        assert doc["version"] == CHECKPOINT_VERSION
        validate_checkpoint(doc)

    def test_garbage_file_raises(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("this is not json {{{")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "nope.json")

    def test_wrong_format_raises(self, graph, tmp_path):
        _, path, doc = self._valid_doc(graph, tmp_path)
        doc["format"] = "something-else"
        path.write_text(json.dumps(doc))
        with pytest.raises(CheckpointError, match="format"):
            load_checkpoint(path)

    def test_future_version_raises(self, graph, tmp_path):
        _, path, doc = self._valid_doc(graph, tmp_path)
        doc["version"] = CHECKPOINT_VERSION + 1
        path.write_text(json.dumps(doc))
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path)

    def test_missing_section_raises(self, graph, tmp_path):
        _, path, doc = self._valid_doc(graph, tmp_path)
        del doc["state"]
        path.write_text(json.dumps(doc))
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_tampered_pattern_refused_on_resume(self, graph, tmp_path):
        engine, path, doc = self._valid_doc(graph, tmp_path)
        doc["pattern"]["digest"] = "0" * 64
        with pytest.raises(CheckpointError, match="pattern"):
            engine.resume(doc)

    def test_write_checkpoint_is_atomic(self, graph, tmp_path):
        # The temp file used for the atomic replace must not linger.
        engine = CSCE(graph)
        path = tmp_path / "ck.json"
        stream = engine.match_iter(square(), max_embeddings=1)
        drain(stream)
        write_checkpoint(
            path, stream, engine.store, square(), stream.result().variant,
            "csce",
        )
        assert path.exists()
        assert list(tmp_path.glob("*.tmp")) == []
