"""Unit tests for the pattern catalog."""

import pytest

from repro.errors import GraphError
from repro.graph import count_automorphisms, is_connected
from repro.graph.patterns import (
    CATALOG,
    by_name,
    clique,
    complete_bipartite,
    cycle,
    directed_cycle,
    double_triangle,
    house,
    path,
    random_tree,
    star,
)


class TestShapes:
    def test_path(self):
        p = path(5)
        assert p.num_vertices == 5 and p.num_edges == 4
        assert count_automorphisms(p) == 2

    def test_cycle(self):
        c = cycle(6)
        assert c.num_edges == 6
        assert count_automorphisms(c) == 12  # dihedral

    def test_clique(self):
        k = clique(5)
        assert k.num_edges == 10
        assert count_automorphisms(k) == 120

    def test_star(self):
        s = star(6)
        assert s.degree(0) == 6
        assert count_automorphisms(s) == 720

    def test_complete_bipartite(self):
        b = complete_bipartite(2, 3)
        assert b.num_edges == 6
        assert count_automorphisms(b) == 2 * 6  # 2! x 3!

    def test_house(self):
        h = house()
        assert h.num_vertices == 5 and h.num_edges == 6

    def test_double_triangle(self):
        d = double_triangle()
        assert d.num_edges == 5
        assert count_automorphisms(d) == 4

    def test_directed_cycle(self):
        c = directed_cycle(4)
        assert c.is_directed
        assert count_automorphisms(c) == 4  # rotations only

    def test_random_tree_connected_acyclic(self):
        for seed in range(5):
            t = random_tree(10, seed=seed)
            assert t.num_edges == 9
            assert is_connected(t)

    def test_random_tree_deterministic(self):
        assert random_tree(8, seed=3) == random_tree(8, seed=3)

    def test_tiny_trees(self):
        assert random_tree(1).num_edges == 0
        assert random_tree(2).num_edges == 1


class TestLabels:
    def test_labeled_path(self):
        p = path(3, labels=["A", "B", "A"])
        assert p.vertex_labels == ["A", "B", "A"]

    def test_label_length_mismatch(self):
        with pytest.raises(GraphError):
            clique(3, labels=["A"])


class TestValidation:
    @pytest.mark.parametrize(
        "factory,bad",
        [(path, 0), (cycle, 2), (clique, 1), (star, 0), (directed_cycle, 1)],
    )
    def test_size_validation(self, factory, bad):
        with pytest.raises(GraphError):
            factory(bad)

    def test_bipartite_validation(self):
        with pytest.raises(GraphError):
            complete_bipartite(0, 3)


class TestCatalog:
    def test_every_entry_builds(self):
        for name in CATALOG:
            g = by_name(name)
            assert g.num_vertices >= 2

    def test_unknown_name(self):
        with pytest.raises(GraphError, match="unknown pattern"):
            by_name("pentagon-with-hat")

    def test_counts_on_reference_graph(self, square_with_diagonal):
        from repro.core import CSCE

        engine = CSCE(square_with_diagonal)
        assert engine.count(by_name("triangle")) == 12
        assert engine.count(by_name("square")) == 8
        assert engine.count(by_name("diamond")) == 4
