"""Unit tests for the CSCE facade and paper worked examples."""

import pytest

from repro.ccsr import CCSRStore
from repro.core import CSCE, Variant

from conftest import make_fig1_graph
from repro.graph import Graph


class TestConstruction:
    def test_from_graph_builds_store(self, triangle):
        engine = CSCE(triangle)
        assert engine.store.num_edges == 3

    def test_from_prebuilt_store_shared(self, triangle):
        store = CCSRStore(triangle)
        a, b = CSCE(store), CSCE(store)
        assert a.store is b.store

    def test_repr(self, triangle):
        assert "CSCE" in repr(CSCE(triangle))


class TestFig1WorkedExamples:
    """The running examples from the paper's Sections I-II."""

    @pytest.fixture(scope="class")
    def engine(self):
        return CSCE(make_fig1_graph())

    def test_candidates_of_u2_depend_on_u1(self, engine):
        """Section V: C(u2 | u1 -> v1) = {v2, v6} and C(u2 | u1 -> v4) = {v5}."""
        cluster = engine.store.cluster_for("A", "B", None, True)
        assert list(cluster.successors(0)) == [1, 5]  # v1 -> {v2, v6}
        assert list(cluster.successors(3)) == [4]  # v4 -> {v5}

    def test_a_to_b_pattern_counts(self, engine):
        p = Graph()
        p.add_vertices(["A", "B"])
        p.add_edge(0, 1, directed=True)
        # Directed A->B edges: (v1,v2), (v1,v6), (v4,v5), (v8,v9).
        assert engine.count(p, "edge_induced") == 4
        assert engine.count(p, "homomorphic") == 4

    def test_syntactic_equivalence_of_v3_v10(self, engine):
        """v3 and v10 (both C-neighbors of v1) are interchangeable: any
        pattern putting a C next to an A finds both."""
        p = Graph()
        p.add_vertices(["A", "C"])
        p.add_edge(0, 1)
        result = engine.match(p, "edge_induced")
        images = {m[1] for m in result.embeddings}
        assert images == {2, 9}  # v3 and v10

    def test_star_pattern_with_dependency_regions(self, engine):
        """A->B with a C and D leaf on A: the C and D regions are
        conditionally independent given the A mapping (the paper's R1/R2
        redundancy example)."""
        p = Graph()
        p.add_vertices(["A", "B", "C", "D"])
        p.add_edge(0, 1, directed=True)
        p.add_edge(0, 2)
        p.add_edge(0, 3)
        result = engine.match(p, "edge_induced", count_only=True)
        # Only v1 has B, C, and D neighbors: 2 B-choices x 2 C x 1 D.
        assert result.count == 4
        assert result.stats["factorizations"] > 0


class TestFacadeOptions:
    def test_count_shorthand(self, square_with_diagonal, path3):
        engine = CSCE(square_with_diagonal)
        assert engine.count(path3) == engine.match(path3).count

    def test_variant_objects_accepted(self, square_with_diagonal, path3):
        engine = CSCE(square_with_diagonal)
        assert engine.count(path3, Variant.HOMOMORPHIC) == 26

    def test_match_all_planners_reachable(self, square_with_diagonal, path3):
        engine = CSCE(square_with_diagonal)
        for planner in ("csce", "ri", "ri_cluster", "rm"):
            assert engine.count(path3, planner=planner) == 16
