"""Unit tests for the Cypher-flavored pattern DSL."""

import pytest

from repro.errors import FormatError
from repro.graph import Graph, format_pattern, parse_pattern, pattern
from repro.core import CSCE


class TestNodes:
    def test_named_node_reused(self):
        g, names = parse_pattern("(a)-->(b), (a)-->(c)")
        assert g.num_vertices == 3
        assert g.out_degree(names["a"]) == 2

    def test_anonymous_nodes_are_fresh(self):
        g, _ = parse_pattern("()-->(), ()-->()")
        assert g.num_vertices == 4

    def test_default_label_is_zero(self):
        g, names = parse_pattern("(a)--(b)")
        assert g.vertex_label(names["a"]) == 0

    def test_string_and_int_labels(self):
        g, names = parse_pattern("(a:Person)--(b:7)")
        assert g.vertex_label(names["a"]) == "Person"
        assert g.vertex_label(names["b"]) == 7

    def test_late_labeling(self):
        g, names = parse_pattern("(a)--(b), (a:X)--(c)")
        assert g.vertex_label(names["a"]) == "X"

    def test_conflicting_labels_rejected(self):
        with pytest.raises(FormatError, match="labeled twice"):
            parse_pattern("(a:X)--(b), (a:Y)--(c)")

    def test_repeated_consistent_label_ok(self):
        g, _ = parse_pattern("(a:X)--(b), (a:X)--(c)")
        assert g.num_vertices == 3


class TestEdges:
    def test_undirected(self):
        g = pattern("(a)--(b)")
        e = next(iter(g.edges()))
        assert not e.directed and e.label is None

    def test_directed_right(self):
        g, names = parse_pattern("(a)-->(b)")
        e = next(iter(g.edges()))
        assert e.directed
        assert (e.src, e.dst) == (names["a"], names["b"])

    def test_directed_left(self):
        g, names = parse_pattern("(a)<--(b)")
        e = next(iter(g.edges()))
        assert (e.src, e.dst) == (names["b"], names["a"])

    def test_edge_labels(self):
        g = pattern("(a)-[:knows]->(b)")
        assert next(iter(g.edges())).label == "knows"

    def test_edge_variable_ignored(self):
        g = pattern("(a)-[r:knows]->(b)")
        assert next(iter(g.edges())).label == "knows"

    def test_integer_edge_label(self):
        g = pattern("(a)-[:3]-(b)")
        assert next(iter(g.edges())).label == 3

    def test_chained_clause(self):
        g, names = parse_pattern("(a)-->(b)-->(c)<--(d)")
        assert g.num_edges == 3
        assert g.has_edge(names["d"], names["c"])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(FormatError, match="duplicate"):
            pattern("(a)--(b), (a)--(b)")

    def test_self_loop_rejected(self):
        with pytest.raises(FormatError, match="self-loop"):
            pattern("(a)--(a)")


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "(a)--",
            "(a-->(b)",
            "(a))--(b)",
            "(a)==(b)",
            "(a)-[:x(b)",
            "(a)-->(b) (c)",
            "(:)--(b)",
        ],
    )
    def test_malformed_patterns(self, bad):
        with pytest.raises(FormatError):
            parse_pattern(bad)

    def test_error_mentions_position(self):
        with pytest.raises(FormatError, match="position"):
            parse_pattern("(a)~~(b)")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "(a)--(b)",
            "(a:X)-[:r]->(b:Y)",
            "(a)-->(b)-->(c), (a)--(c)",
            "(a:1)-[:2]-(b:1)",
        ],
    )
    def test_format_then_parse(self, text):
        g, _ = parse_pattern(text)
        rendered = format_pattern(g)
        g2, _ = parse_pattern(rendered)
        assert g2 == g

    def test_isolated_vertices_rendered(self):
        g = Graph()
        g.add_vertices(["A", "B"])
        g2, _ = parse_pattern(format_pattern(g))
        assert g2 == g


class TestEndToEnd:
    def test_dsl_pattern_matches(self, square_with_diagonal):
        engine = CSCE(square_with_diagonal)
        triangle = pattern("(a)--(b)--(c)--(a)")
        assert engine.count(triangle) == 12

    def test_heterogeneous_dsl_query(self):
        g = Graph()
        a, b, c = g.add_vertices(["P", "P", "J"])
        g.add_edge(a, b, label="knows")
        g.add_edge(a, c, label="works_on", directed=True)
        g.add_edge(b, c, label="works_on", directed=True)
        q = pattern(
            "(x:P)-[:knows]-(y:P), (x)-[:works_on]->(j:J), (y)-[:works_on]->(j)"
        )
        assert CSCE(g).count(q) == 2  # x/y swap
