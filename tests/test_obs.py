"""Tests for the observability subsystem (repro.obs)."""

import json
import logging
import threading
import time

import pytest

from repro.cli import main
from repro.core.csce import CSCE
from repro.errors import FormatError
from repro.graph import Graph, save_graph
from repro.obs import (
    NULL_HEARTBEAT,
    NULL_OBS,
    NULL_TRACER,
    STAT_KEYS,
    CounterRegistry,
    Heartbeat,
    Observation,
    Tracer,
    assert_stat_keys,
    build_run_report,
    configure_logging,
    format_run_report,
    load_run_reports,
    unified_stats,
    validate_run_report,
    write_run_report,
)
from repro.obs.logconfig import JsonFormatter


def _triangle_fan(n=12):
    """A small graph with enough embeddings to drive counters."""
    edges = [(0, i) for i in range(1, n)]
    edges += [(i, i + 1) for i in range(1, n - 1)]
    return Graph.from_edges(n, edges)


def _path_pattern(k=3):
    return Graph.from_edges(k, [(i, i + 1) for i in range(k - 1)])


# ----------------------------------------------------------------------
class TestTracer:
    def test_nesting_and_timing_monotonic(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            time.sleep(0.001)
            with tracer.span("inner") as inner:
                time.sleep(0.001)
        assert [r.name for r in tracer.roots] == ["outer"]
        assert outer.children == [inner]
        assert outer.start <= inner.start <= inner.end <= outer.end
        assert inner.duration <= outer.duration
        assert outer.duration > 0

    def test_attrs_and_find(self):
        tracer = Tracer()
        with tracer.span("a", planner="csce") as span:
            span.set("order", [1, 2])
            with tracer.span("b"):
                pass
        assert tracer.find("b") is not None
        assert tracer.find("a").attrs == {"planner": "csce", "order": [1, 2]}
        assert tracer.find("missing") is None

    def test_exception_records_error(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        assert tracer.find("boom").attrs["error"] == "ValueError"

    def test_to_list_round_trips_through_json(self):
        tracer = Tracer()
        with tracer.span("root", k=1):
            with tracer.span("child"):
                pass
        dumped = json.loads(json.dumps(tracer.to_list()))
        assert dumped[0]["name"] == "root"
        assert dumped[0]["children"][0]["name"] == "child"
        assert dumped[0]["duration_seconds"] >= 0

    def test_sibling_threads_produce_separate_roots(self):
        tracer = Tracer()

        def work(name):
            with tracer.span(name):
                time.sleep(0.002)

        threads = [threading.Thread(target=work, args=(f"t{i}",)) for i in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(r.name for r in tracer.roots) == ["t0", "t1", "t2"]
        assert all(not r.children for r in tracer.roots)

    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("anything", k=1) as span:
            span.set("x", 2)
        assert NULL_TRACER.to_list() == []
        assert not NULL_TRACER.enabled


# ----------------------------------------------------------------------
class TestCounters:
    def test_inc_merge_snapshot(self):
        reg = CounterRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        reg.merge({"a": 1, "b": 2, "skip": "text"})
        snap = reg.snapshot()
        assert snap == {"a": 6, "b": 2}

    def test_sources_are_polled_at_snapshot(self):
        reg = CounterRegistry()
        state = {"nodes": 0}
        reg.add_source(lambda: state)
        reg.inc("nodes", 5)
        state["nodes"] = 7
        assert reg.get("nodes") == 12

    def test_unified_stats_covers_exact_key_set(self):
        stats = unified_stats(nodes=3, backtracks=1)
        assert_stat_keys(stats)
        assert stats["nodes"] == 3
        assert stats["backtracks"] == 1
        assert stats["memo_misses"] == 0

    def test_assert_stat_keys_rejects_divergence(self):
        good = dict.fromkeys(STAT_KEYS, 0)
        assert_stat_keys(good)
        bad = dict(good)
        bad.pop("memo_misses")
        bad["bogus"] = 1
        with pytest.raises(ValueError, match="memo_misses"):
            assert_stat_keys(bad)

    def test_registry_isolation_across_concurrent_matchers(self):
        """Two matcher runs in parallel threads never share counters."""
        engine = CSCE(_triangle_fan())
        patterns = [_path_pattern(3), _path_pattern(4)]
        results = [None, None]
        observations = [Observation(trace=False), Observation(trace=False)]

        def run(i):
            results[i] = engine.match(patterns[i], obs=observations[i])

        threads = [threading.Thread(target=run, args=(i,)) for i in (0, 1)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for i in (0, 1):
            snap = observations[i].counters.snapshot()
            assert snap["nodes"] == results[i].stats["nodes"]
        # Different pattern sizes explore different node counts, so equal
        # registries would mean cross-talk.
        assert (
            observations[0].counters.snapshot()["nodes"]
            != observations[1].counters.snapshot()["nodes"]
        )


# ----------------------------------------------------------------------
class TestStatsParity:
    """Satellite: enumeration and counting emit the same stats keys."""

    def test_count_only_true_and_false_same_keys(self):
        engine = CSCE(_triangle_fan())
        pattern = _path_pattern(3)
        counted = engine.match(pattern, count_only=True)
        enumerated = engine.match(pattern, count_only=False)
        assert set(counted.stats) == set(STAT_KEYS)
        assert set(enumerated.stats) == set(STAT_KEYS)
        assert counted.count == enumerated.count

    def test_no_sce_path_has_same_keys(self):
        engine = CSCE(_triangle_fan())
        result = engine.match(_path_pattern(3), count_only=True, use_sce=False)
        assert_stat_keys(result.stats)
        assert result.stats["memo_hits"] == 0
        assert result.stats["memo_misses"] == 0

    def test_baseline_stats_have_same_keys(self):
        from repro.baselines import BacktrackingMatcher

        engine = BacktrackingMatcher(_triangle_fan())
        result = engine.match(_path_pattern(3))
        assert_stat_keys(result.stats)
        assert result.stats["nodes"] > 0


# ----------------------------------------------------------------------
class TestNoopMode:
    def test_disabled_obs_stats_identical(self):
        """Instrumentation must not change what the engine computes."""
        graph = _triangle_fan()
        pattern = _path_pattern(4)
        plain = CSCE(graph).match(pattern)
        observed_obs = Observation(heartbeat_interval=0.0)
        observed = CSCE(graph).match(pattern, obs=observed_obs)
        assert plain.count == observed.count
        assert plain.stats == observed.stats

    def test_null_obs_instruments_disabled(self):
        assert not NULL_OBS.enabled
        assert not NULL_OBS.tracer.enabled
        assert not NULL_OBS.counters.enabled
        assert not NULL_OBS.heartbeat.enabled
        assert NULL_OBS.counters.snapshot() == {}

    def test_match_span_tree_covers_pipeline(self):
        obs = Observation()
        engine = CSCE(_triangle_fan())
        engine.match(_path_pattern(3), obs=obs)
        match_span = obs.tracer.find("match")
        assert match_span is not None
        for name in ("read", "plan", "execute"):
            assert match_span.find(name) is not None, name
        cluster = obs.tracer.find("read.cluster")
        assert cluster is not None
        assert cluster.attrs["bytes"] > 0


# ----------------------------------------------------------------------
class TestHeartbeat:
    def test_beat_samples_depth_and_rate_limits(self):
        lines = []
        hb = Heartbeat(interval=10.0, emit=lines.append)
        assert hb.beat(10, 1, depth=2) is False  # within interval
        assert hb.depth_histogram == {2: 1}
        hb._last -= 11.0  # simulate elapsed interval
        assert hb.beat(20, 2, depth=3) is True
        assert hb.beats == 1
        assert "[heartbeat]" in lines[0] and "2 embeddings" in lines[0]

    def test_null_heartbeat_never_emits(self):
        assert NULL_HEARTBEAT.beat(1, 1) is False
        assert NULL_HEARTBEAT.beats == 0

    def test_enumerator_ticks_heartbeat(self, monkeypatch):
        monkeypatch.setattr("repro.engine.executor._TIME_CHECK_INTERVAL", 4)
        lines = []
        obs = Observation(
            trace=False, heartbeat=Heartbeat(interval=0.0, emit=lines.append)
        )
        engine = CSCE(_triangle_fan())
        result = engine.match(_path_pattern(3), count_only=False, obs=obs)
        assert result.stats["nodes"] >= 4
        assert obs.heartbeat.beats > 0
        assert lines and "enumerate" in lines[0]
        assert sum(obs.heartbeat.depth_histogram.values()) == obs.heartbeat.beats

    def test_sce_counter_ticks_heartbeat(self, monkeypatch):
        monkeypatch.setattr("repro.engine.counting._TIME_CHECK_INTERVAL", 4)
        lines = []
        obs = Observation(
            trace=False, heartbeat=Heartbeat(interval=0.0, emit=lines.append)
        )
        engine = CSCE(_triangle_fan())
        engine.match(_path_pattern(3), count_only=True, obs=obs)
        assert obs.heartbeat.beats > 0
        assert "count" in lines[0]

    def test_baseline_ticks_heartbeat(self, monkeypatch):
        from repro.baselines import BacktrackingMatcher

        monkeypatch.setattr("repro.baselines.base._TIME_CHECK_INTERVAL", 4)
        lines = []
        obs = Observation(
            trace=False, heartbeat=Heartbeat(interval=0.0, emit=lines.append)
        )
        engine = BacktrackingMatcher(_triangle_fan())
        engine.match(_path_pattern(3), obs=obs)
        assert obs.heartbeat.beats > 0
        assert "baseline" in lines[0]


# ----------------------------------------------------------------------
class TestRunReport:
    def _report(self, trace=True):
        obs = Observation(trace=trace)
        engine = CSCE(_triangle_fan(), obs=obs)
        pattern = _path_pattern(3)
        plan = engine.build_plan(pattern)
        result = engine.match(pattern, plan=plan)
        return build_run_report(
            result,
            engine="CSCE",
            obs=obs,
            plan=plan,
            graph=engine.store,
            pattern=pattern,
            dataset="unit",
        )

    def test_build_and_validate(self):
        report = self._report()
        validate_run_report(report)
        assert report["count"] > 0
        assert set(STAT_KEYS) <= set(report["counters"])
        assert report["counters"]["ccsr.bytes_read"] > 0
        names = {s["name"] for s in report["spans"]}
        assert "match" in names
        assert report["plan"]["order_rationale"]

    def test_validate_rejects_bad_reports(self):
        with pytest.raises(FormatError, match="JSON object"):
            validate_run_report([])
        report = self._report(trace=False)
        report.pop("counters")
        report["version"] = "one"
        with pytest.raises(FormatError, match="counters"):
            validate_run_report(report)

    def test_json_round_trip(self, tmp_path):
        report = self._report()
        path = tmp_path / "run.json"
        write_run_report(report, path)
        loaded = load_run_reports(path)
        assert len(loaded) == 1
        validate_run_report(loaded[0])
        assert loaded[0]["count"] == report["count"]
        assert loaded[0]["timings"]["total_seconds"] == pytest.approx(
            report["timings"]["total_seconds"]
        )

    def test_jsonl_appends(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        write_run_report(self._report(trace=False), path)
        write_run_report(self._report(trace=False), path)
        loaded = load_run_reports(path)
        assert len(loaded) == 2
        for report in loaded:
            validate_run_report(report)

    def test_format_run_report_mentions_phases(self):
        text = format_run_report(self._report())
        for needle in ("read", "optimize", "execute", "counters:", "spans:"):
            assert needle in text

    def test_robustness_fields_always_present(self):
        report = self._report(trace=False)
        assert report["stop_reason"] is None
        assert report["degradation"] == []
        assert "checkpoint" not in report

    def test_robustness_problems(self):
        from repro.obs import robustness_problems

        report = self._report(trace=False)
        assert robustness_problems(report) == []
        # Legacy reports without the fields stay clean.
        legacy = dict(report)
        del legacy["stop_reason"], legacy["degradation"]
        assert robustness_problems(legacy) == []
        # Bad values are flagged.
        assert robustness_problems({**report, "stop_reason": "nope"})
        assert robustness_problems({**report, "degradation": "evict_memo"})
        assert robustness_problems(
            {**report, "degradation": ["disable_memo", "evict_memo"]}
        )
        assert robustness_problems({**report, "checkpoint": {"written": True}})
        good = {
            **report,
            "stop_reason": "memory_limit",
            "degradation": ["evict_memo", "disable_memo", "suspend"],
            "checkpoint": {"path": "ck.json", "written": True},
        }
        assert robustness_problems(good) == []
        # A written checkpoint on a completed run is contradictory.
        bad = {**good, "stop_reason": None}
        assert robustness_problems(bad)

    def test_format_run_report_shows_robustness(self):
        report = {
            **self._report(trace=False),
            "stop_reason": "cancelled",
            "degradation": ["evict_memo"],
            "checkpoint": {"path": "ck.json", "written": True},
        }
        text = format_run_report(report)
        assert "stopped: cancelled" in text
        assert "degradation : evict_memo" in text
        assert "ck.json (written)" in text


# ----------------------------------------------------------------------
class TestLogging:
    def test_configure_logging_levels(self):
        assert configure_logging("debug") == "DEBUG"
        assert logging.getLogger("repro").level == logging.DEBUG
        assert configure_logging(None) == "WARNING"

    def test_configure_logging_rejects_garbage(self):
        with pytest.raises(ValueError):
            configure_logging("chatty")

    def test_json_formatter_emits_parseable_lines(self):
        record = logging.LogRecord(
            "repro.test", logging.INFO, __file__, 1, "hello %s", ("x",), None
        )
        payload = json.loads(JsonFormatter().format(record))
        assert payload["message"] == "hello x"
        assert payload["level"] == "INFO"
        assert payload["logger"] == "repro.test"


# ----------------------------------------------------------------------
class TestCLI:
    def _write_graphs(self, tmp_path):
        data = _triangle_fan()
        pattern = _path_pattern(3)
        data_path = tmp_path / "d.graph"
        pattern_path = tmp_path / "p.graph"
        save_graph(data, data_path)
        save_graph(pattern, pattern_path)
        return str(data_path), str(pattern_path)

    def test_stats_json(self, capsys):
        assert main(["stats", "--scale", "0.05", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scale"] == 0.05
        assert any(row["Data Graph"] == "dip" for row in payload["datasets"])

    def test_match_json(self, tmp_path, capsys):
        data_path, pattern_path = self._write_graphs(tmp_path)
        code = main(
            ["match", "--data", data_path, "--pattern", pattern_path, "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"] == "CSCE"
        assert payload["count"] > 0
        assert set(STAT_KEYS) <= set(payload["stats"])
        assert set(payload["timings"]) == {
            "read_seconds",
            "plan_seconds",
            "execute_seconds",
            "total_seconds",
        }

    def test_match_report_round_trip(self, tmp_path, capsys):
        """match --report → report subcommand → parse (satellite 4)."""
        data_path, pattern_path = self._write_graphs(tmp_path)
        out = tmp_path / "run.json"
        code = main(
            [
                "match",
                "--data",
                data_path,
                "--pattern",
                pattern_path,
                "--trace",
                "--report",
                str(out),
            ]
        )
        assert code == 0
        capsys.readouterr()
        assert main(["report", str(out), "--validate"]) == 0
        assert "valid" in capsys.readouterr().out
        assert main(["report", str(out)]) == 0
        text = capsys.readouterr().out
        assert "run-report v1" in text
        assert "phase breakdown" in text
        loaded = load_run_reports(out)
        assert loaded[0]["engine"] == "CSCE"
        span_names = {s["name"] for s in loaded[0]["spans"]}
        assert {"match", "read", "plan"} <= span_names

    def test_report_validate_flags_corrupt_file(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "nope"}))
        assert main(["report", str(path), "--validate"]) == 1
        assert "invalid" in capsys.readouterr().err

    def test_report_missing_file(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "none.json")]) == 2

    def test_bench_reports(self, tmp_path, capsys):
        out = tmp_path / "sweep.jsonl"
        code = main(
            [
                "bench",
                "--dataset",
                "yeast",
                "--scale",
                "0.15",
                "--sizes",
                "4",
                "--patterns",
                "1",
                "--engines",
                "CSCE",
                "--time-limit",
                "10",
                "--trace",
                "--report",
                str(out),
            ]
        )
        assert code == 0
        reports = load_run_reports(out)
        assert len(reports) == 1
        validate_run_report(reports[0])
        assert reports[0]["extra"]["experiment"] == "cli"
