"""Unit tests for GCF, RM ordering, and LDSF (Sections VI, Algorithms 3-4)."""

from collections import Counter

import pytest

from repro.ccsr import CCSRStore
from repro.core import Variant, build_dag, compute_descendant_sizes
from repro.core.gcf import gcf_order, rapidmatch_order, validate_order
from repro.core.ldsf import ldsf_order
from repro.errors import PlanError
from repro.graph import Graph

from conftest import make_fig1_graph


def star(labels=None):
    return Graph.from_edges(4, [(0, 1), (0, 2), (0, 3)], vertex_labels=labels)


class TestGCF:
    def test_order_is_permutation(self):
        p = star()
        order = gcf_order(p)
        validate_order(p, order)

    def test_highest_degree_first(self):
        order = gcf_order(star())
        assert order[0] == 0

    def test_connected_prefixes(self):
        """GCF grows the order along pattern edges when possible (T1 rule)."""
        p = Graph.from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])
        order = gcf_order(p)
        seen = {order[0]}
        for v in order[1:]:
            assert set(p.neighbors(v)) & seen
            seen.add(v)

    def test_t1_preferred_over_t2(self):
        # Triangle 0-1-2 plus pendant 3 on 0: after [0, 1], vertex 2 has
        # two matched neighbors (T1=2) and must beat pendant 3 (T1=1).
        p = Graph.from_edges(4, [(0, 1), (1, 2), (0, 2), (0, 3)])
        order = gcf_order(p)
        assert order.index(2) < order.index(3)

    def test_deterministic(self):
        p = star()
        assert gcf_order(p) == gcf_order(p)

    def test_cluster_tiebreak_prefers_small_cluster(self):
        # Data: many X--Y edges, one X--Z edge. Pattern: Y--X--Z. The first
        # vertex is X (highest degree); the Z side has the smaller cluster,
        # so with tie-breaking Z is matched before Y.
        g = Graph()
        g.add_vertices(["X"] * 4 + ["Y"] * 4 + ["Z"])
        for i in range(4):
            for j in range(4, 8):
                g.add_edge(i, j)
        g.add_edge(0, 8)
        p = Graph()
        p.add_vertices(["X", "Y", "Z"])
        p.add_edge(0, 1)
        p.add_edge(0, 2)
        store = CCSRStore(g)
        task = store.read(p, Variant.EDGE_INDUCED)
        with_clusters = gcf_order(p, task, use_cluster_tiebreak=True)
        assert with_clusters == [0, 2, 1]
        without = gcf_order(p, task, use_cluster_tiebreak=False)
        assert without == [0, 1, 2]  # falls back to vertex-id tie-break

    def test_empty_pattern_rejected(self):
        with pytest.raises(PlanError):
            gcf_order(Graph())


class TestRapidMatchOrder:
    def test_is_permutation(self):
        p = make_fig1_graph()
        validate_order(p, rapidmatch_order(p))

    def test_prefers_backward_connectivity(self):
        p = Graph.from_edges(4, [(0, 1), (1, 2), (0, 2), (0, 3)])
        order = rapidmatch_order(p)
        # The triangle closes before the pendant is matched.
        assert order.index(2) < order.index(3)

    def test_empty_pattern_rejected(self):
        with pytest.raises(PlanError):
            rapidmatch_order(Graph())


class TestLDSF:
    def _setup(self, pattern, order):
        dag = build_dag(pattern, order, Variant.EDGE_INDUCED)
        sizes = compute_descendant_sizes(dag)
        return dag, sizes

    def test_output_is_topological_order(self):
        p = make_fig1_graph()
        order = gcf_order(p)
        dag, sizes = self._setup(p, order)
        final = ldsf_order(dag, p, descendant_sizes=sizes)
        assert dag.is_topological_order(final)

    def test_largest_descendants_first(self):
        # Two chains from a single source: 0 -> 1 -> 2 and 0 -> 3.
        p = Graph.from_edges(4, [(0, 1), (1, 2), (0, 3)])
        dag, sizes = self._setup(p, [0, 1, 2, 3])
        final = ldsf_order(dag, p, descendant_sizes=sizes)
        # Vertex 1 (descendant size 1) is preferred over vertex 3 (0).
        assert final.index(1) < final.index(3)

    def test_label_frequency_tiebreak(self):
        p = Graph.from_edges(
            3, [(0, 1), (0, 2)], vertex_labels=["c", "rare", "common"]
        )
        dag, sizes = self._setup(p, [0, 1, 2])
        freq = Counter({"rare": 1, "common": 100})
        final = ldsf_order(dag, p, label_frequency=freq, descendant_sizes=sizes)
        assert final == [0, 1, 2]  # rare label matched first
        freq_flipped = Counter({"rare": 100, "common": 1})
        assert ldsf_order(
            dag, p, label_frequency=freq_flipped, descendant_sizes=sizes
        ) == [0, 2, 1]

    def test_every_vertex_emitted_once(self):
        p = make_fig1_graph()
        dag, sizes = self._setup(p, gcf_order(p))
        final = ldsf_order(dag, p, descendant_sizes=sizes)
        assert sorted(final) == list(range(p.num_vertices))

    def test_computes_descendants_if_missing(self):
        p = star()
        dag, _ = self._setup(p, [0, 1, 2, 3])
        final = ldsf_order(dag, p)
        assert final[0] == 0
