"""Unit tests for the cost-based planner extension."""

import pytest

from repro.core import CSCE, Variant
from repro.core.cost import cost_based_order, extension_estimate
from repro.graph import Graph
from repro.graph.sampling import sample_pattern

from conftest import make_random_graph


@pytest.fixture(scope="module")
def data_graph():
    return make_random_graph(25, 60, num_labels=3, seed=55)


class TestCostOrder:
    def test_order_is_permutation(self, data_graph):
        engine = CSCE(data_graph)
        p = sample_pattern(data_graph, 5, rng=0)
        task = engine.store.read(p, Variant.EDGE_INDUCED)
        order = cost_based_order(p, task)
        assert sorted(order) == list(range(p.num_vertices))

    def test_greedy_path_for_large_patterns(self, data_graph):
        engine = CSCE(data_graph)
        p = sample_pattern(data_graph, 14, rng=1)
        task = engine.store.read(p, Variant.EDGE_INDUCED)
        order = cost_based_order(p, task, max_exact_vertices=8)
        assert sorted(order) == list(range(14))

    def test_exact_and_greedy_agree_on_counts(self, data_graph):
        engine = CSCE(data_graph)
        p = sample_pattern(data_graph, 5, rng=2)
        reference = engine.count(p)
        assert engine.count(p, planner="cost") == reference

    def test_prefers_selective_start(self):
        # Data: one rare X--Y edge, many A--B edges. Pattern: Y--X, A--B
        # disconnected? Use connected: (X)--(Y) with Y also joined to A-hub.
        g = Graph()
        g.add_vertices(["X", "Y"] + ["A"] * 6 + ["B"] * 6)
        g.add_edge(0, 1)
        for i in range(2, 8):
            for j in range(8, 14):
                g.add_edge(i, j)
        p = Graph()
        p.add_vertices(["A", "B"])
        p.add_edge(0, 1)
        engine = CSCE(g)
        task = engine.store.read(p, Variant.EDGE_INDUCED)
        order = cost_based_order(p, task)
        # Either endpoint of the dense A--B cluster: both sides have 6
        # vertices; start cardinality 6 regardless, so just valid.
        assert sorted(order) == [0, 1]

    def test_estimates_reflect_selectivity(self):
        g = Graph()
        g.add_vertices(["H", "T", "T", "T", "R"])
        for leaf in (1, 2, 3):
            g.add_edge(0, leaf)
        g.add_edge(0, 4)
        p = Graph()
        p.add_vertices(["H", "T", "R"])
        p.add_edge(0, 1)
        p.add_edge(0, 2)
        task = CSCE(g).store.read(p, Variant.EDGE_INDUCED)
        # Extending toward the triple-T side must look costlier than toward
        # the single R (the estimator averages over both endpoint sides of
        # an undirected cluster, so exact values are model artifacts).
        assert extension_estimate(task, p, [0], 1) > extension_estimate(
            task, p, [0], 2
        )
        assert extension_estimate(task, p, [0], 2) == pytest.approx(1.0)

    def test_impossible_edge_zero_estimate(self, data_graph):
        engine = CSCE(data_graph)
        p = Graph()
        p.add_vertices(["nope", "nada"])
        p.add_edge(0, 1)
        task = engine.store.read(p, Variant.EDGE_INDUCED)
        order = cost_based_order(p, task)
        assert sorted(order) == [0, 1]
        assert engine.count(p, planner="cost") == 0


class TestFacadeIntegration:
    @pytest.mark.parametrize(
        "variant", ["edge_induced", "vertex_induced", "homomorphic"]
    )
    def test_all_variants_same_counts(self, data_graph, variant):
        engine = CSCE(data_graph)
        p = sample_pattern(data_graph, 4, rng=3)
        assert engine.count(p, variant, planner="cost") == engine.count(p, variant)

    def test_plan_metadata(self, data_graph):
        engine = CSCE(data_graph)
        p = sample_pattern(data_graph, 4, rng=4)
        plan = engine.build_plan(p, planner="cost")
        plan.validate()
        assert plan.planner_name == "cost"
