"""Tests for the bench-history store and regression gate
(repro.bench.history + the ``bench --history`` / ``bench compare`` /
``report --validate`` CLI surface)."""

import copy
import json

import pytest

from repro.bench.harness import ExperimentRecord, make_engine, run_task
from repro.bench.history import (
    BENCH_FORMAT,
    BENCH_VERSION,
    build_history,
    calibrate,
    compare_histories,
    config_key,
    load_history,
    machine_fingerprint,
    validate_bench_history,
    write_history,
)
from repro.cli import main
from repro.errors import FormatError
from repro.graph import Graph
from repro.obs import validate_run_report

MACHINE = {
    "platform": "test",
    "python": "3",
    "cpu_count": 1,
    "calibration_seconds": 1.0,
}


def _record(**overrides) -> ExperimentRecord:
    defaults = dict(
        experiment="fig6",
        engine="CSCE",
        dataset="yeast",
        variant="edge_induced",
        pattern_size=8,
        pattern_name="p0",
        embeddings=100,
        total_seconds=0.10,
        execute_seconds=0.08,
        read_seconds=0.01,
        plan_seconds=0.01,
    )
    defaults.update(overrides)
    return ExperimentRecord(**defaults)


def _history(records=None, **machine_overrides) -> dict:
    machine = {**MACHINE, **machine_overrides}
    return build_history(
        "fig6", records if records is not None else [_record()], machine=machine
    )


# ----------------------------------------------------------------------
class TestMachine:
    def test_calibrate_is_positive(self):
        assert calibrate(loops=10_000, repeats=1) > 0

    def test_fingerprint_fields(self):
        machine = machine_fingerprint(calibration_seconds=2.0)
        assert machine["calibration_seconds"] == 2.0
        assert machine["cpu_count"] >= 1
        assert machine["platform"] and machine["python"]


class TestBuildHistory:
    def test_repeats_average_into_one_config(self):
        records = [
            _record(total_seconds=0.10, embeddings=100),
            _record(total_seconds=0.30, embeddings=100),
        ]
        doc = _history(records)
        assert doc["format"] == BENCH_FORMAT
        assert doc["version"] == BENCH_VERSION
        assert len(doc["configs"]) == 1
        config = doc["configs"][0]
        assert config["key"] == config_key(records[0])
        assert config["n"] == 2
        assert config["total_seconds"] == pytest.approx(0.20)
        assert not config["timed_out"]

    def test_any_censored_repeat_flags_the_config(self):
        doc = _history([_record(), _record(timed_out=True)])
        assert doc["configs"][0]["timed_out"]

    def test_distinct_configs_sorted_by_key(self):
        doc = _history(
            [_record(pattern_name="pZ"), _record(pattern_name="pA")]
        )
        keys = [c["key"] for c in doc["configs"]]
        assert keys == sorted(keys) and len(keys) == 2

    def test_roundtrip_through_disk(self, tmp_path):
        path = tmp_path / "BENCH_fig6.json"
        doc = _history()
        write_history(doc, path)
        loaded = load_history(path)
        assert loaded["configs"] == doc["configs"]
        assert loaded["machine"]["calibration_seconds"] == 1.0


class TestValidate:
    def test_valid_document_passes(self):
        validate_bench_history(_history())

    @pytest.mark.parametrize("missing", ["format", "figure", "machine", "configs"])
    def test_missing_field_rejected(self, missing):
        doc = _history()
        del doc[missing]
        with pytest.raises(FormatError, match=missing):
            validate_bench_history(doc)

    def test_wrong_format_or_version_rejected(self):
        doc = _history()
        doc["format"] = "nope"
        with pytest.raises(FormatError, match="format"):
            validate_bench_history(doc)
        doc = _history()
        doc["version"] = 99
        with pytest.raises(FormatError, match="version"):
            validate_bench_history(doc)

    def test_bad_config_entries_rejected(self):
        doc = _history()
        del doc["configs"][0]["key"]
        with pytest.raises(FormatError, match="key"):
            validate_bench_history(doc)
        doc = _history()
        doc["configs"][0]["total_seconds"] = "fast"
        with pytest.raises(FormatError, match="total_seconds"):
            validate_bench_history(doc)
        doc = _history()
        doc["configs"] = ["not a dict"]
        with pytest.raises(FormatError, match="configs\\[0\\]"):
            validate_bench_history(doc)

    def test_load_rejects_invalid_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": BENCH_FORMAT}))
        with pytest.raises(FormatError):
            load_history(path)


# ----------------------------------------------------------------------
class TestCompare:
    def test_identical_histories_pass(self):
        doc = _history()
        comparison = compare_histories(doc, copy.deepcopy(doc))
        assert [d.status for d in comparison.deltas] == ["ok"]
        assert comparison.deltas[0].ratio == pytest.approx(1.0)
        assert comparison.exit_code == 0
        assert "OK" in comparison.summary()

    def test_synthetic_slowdown_is_a_regression(self):
        baseline = _history()
        current = copy.deepcopy(baseline)
        for config in current["configs"]:
            config["total_seconds"] *= 2
        comparison = compare_histories(baseline, current, threshold=1.5)
        assert [d.status for d in comparison.deltas] == ["regression"]
        assert comparison.deltas[0].ratio == pytest.approx(2.0)
        assert comparison.exit_code == 1
        assert "FAIL" in comparison.summary()

    def test_speedup_reported_as_improved(self):
        baseline = _history()
        current = _history([_record(total_seconds=0.01)])
        comparison = compare_histories(baseline, current, threshold=1.5)
        assert comparison.deltas[0].status == "improved"
        assert comparison.exit_code == 0

    def test_calibration_normalizes_machine_speed(self):
        # Current machine is 2x slower (calibration 2.0) and its timings
        # are 2x longer: normalized ratio is 1.0, not a regression.
        baseline = _history()
        current = _history(
            [_record(total_seconds=0.20)], calibration_seconds=2.0
        )
        comparison = compare_histories(baseline, current, threshold=1.5)
        assert comparison.deltas[0].status == "ok"
        assert comparison.deltas[0].ratio == pytest.approx(1.0)

    def test_noise_floor_suppresses_tiny_baselines(self):
        baseline = _history([_record(total_seconds=0.0001)])
        current = _history([_record(total_seconds=0.0009)])
        comparison = compare_histories(
            baseline, current, threshold=1.5, min_seconds=0.0005
        )
        delta = comparison.deltas[0]
        assert delta.status == "ok" and "noise" in delta.note
        assert comparison.exit_code == 0

    def test_timeouts_are_incomparable_not_regressions(self):
        ok = _history()
        slow = _history([_record(timed_out=True, total_seconds=5.0)])
        for baseline, current in ((ok, slow), (slow, ok), (slow, slow)):
            comparison = compare_histories(baseline, current)
            assert comparison.deltas[0].status == "incomparable"
            assert "censored" in comparison.deltas[0].note
            assert comparison.exit_code == 0

    def test_unsupported_is_incomparable(self):
        doc = _history([_record(unsupported=True)])
        comparison = compare_histories(doc, _history())
        assert comparison.deltas[0].status == "incomparable"

    def test_result_drift_is_incomparable(self):
        baseline = _history([_record(embeddings=100)])
        current = _history([_record(embeddings=90)])
        comparison = compare_histories(baseline, current)
        delta = comparison.deltas[0]
        assert delta.status == "incomparable"
        assert "embedding counts differ" in delta.note

    def test_truncated_runs_may_differ_in_count(self):
        baseline = _history([_record(embeddings=100, truncated=True)])
        current = _history([_record(embeddings=90, truncated=True)])
        assert compare_histories(baseline, current).deltas[0].status == "ok"

    def test_new_and_missing_configs(self):
        baseline = _history([_record(pattern_name="pA")])
        current = _history([_record(pattern_name="pB")])
        statuses = {
            d.key.rsplit("|", 1)[-1]: d.status
            for d in compare_histories(baseline, current).deltas
        }
        assert statuses == {"pA": "missing", "pB": "new"}


# ----------------------------------------------------------------------
class TestHarnessTimeoutPath:
    @pytest.fixture
    def timed_out_record(self, monkeypatch):
        # Check the deadline every 4 nodes on both execution paths, then
        # enumerate a workload far too large for a microsecond budget.
        monkeypatch.setattr("repro.engine.executor._TIME_CHECK_INTERVAL", 4)
        monkeypatch.setattr("repro.engine.counting._TIME_CHECK_INTERVAL", 4)
        n = 12
        clique = Graph.from_edges(
            n, [(i, j) for i in range(n) for j in range(i + 1, n)]
        )
        pattern = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        engine = make_engine("CSCE", clique)
        return run_task(
            "timeout",
            "CSCE",
            engine,
            "clique",
            pattern,
            "edge_induced",
            time_limit=1e-6,
            count_only=False,
            collect_reports=True,
        )

    def test_timeout_records_the_time_limit(self, timed_out_record):
        record = timed_out_record
        assert record.timed_out
        # The existing-works convention: a timeout reports the limit, a
        # censored measurement — not the wall clock it happened to burn.
        assert record.total_seconds == 1e-6
        assert record.row()["status"] == "timeout"

    def test_timeout_still_yields_a_valid_run_report(self, timed_out_record):
        report = timed_out_record.report
        assert report is not None
        validate_run_report(report)
        assert report["timed_out"]

    def test_timeout_is_incomparable_in_history_compare(
        self, timed_out_record
    ):
        censored = build_history(
            "timeout", [timed_out_record], machine=MACHINE
        )
        healthy = build_history(
            "timeout",
            [
                _record(
                    experiment="timeout",
                    dataset="clique",
                    pattern_size=4,
                    pattern_name=timed_out_record.pattern_name,
                )
            ],
            machine=MACHINE,
        )
        comparison = compare_histories(healthy, censored)
        assert [d.status for d in comparison.deltas] == ["incomparable"]
        assert comparison.exit_code == 0


# ----------------------------------------------------------------------
class TestHistoryCLI:
    def _write(self, tmp_path, name, doc):
        path = tmp_path / name
        write_history(doc, path)
        return str(path)

    def test_bench_writes_history_document(self, tmp_path, capsys):
        path = tmp_path / "BENCH_smoke.json"
        code = main(
            [
                "bench",
                "--dataset",
                "yeast",
                "--scale",
                "0.15",
                "--sizes",
                "4",
                "--patterns",
                "1",
                "--engines",
                "CSCE",
                "--time-limit",
                "10",
                "--history",
                str(path),
                "--figure",
                "smoke",
            ]
        )
        assert code == 0
        assert "bench-history" in capsys.readouterr().err
        doc = load_history(path)
        assert doc["figure"] == "smoke"
        assert doc["configs"]
        assert doc["machine"]["calibration_seconds"] > 0

    def test_compare_identical_exits_zero(self, tmp_path, capsys):
        path = self._write(tmp_path, "base.json", _history())
        assert main(["bench", "compare", "--baseline", path]) == 0
        out = capsys.readouterr().out
        assert "OK: no regression" in out

    def test_compare_slowdown_exits_nonzero(self, tmp_path, capsys):
        baseline = _history()
        current = copy.deepcopy(baseline)
        for config in current["configs"]:
            config["total_seconds"] *= 2
        base_path = self._write(tmp_path, "base.json", baseline)
        cur_path = self._write(tmp_path, "cur.json", current)
        code = main(
            [
                "bench",
                "compare",
                "--baseline",
                base_path,
                "--current",
                cur_path,
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "regression" in out and "FAIL" in out

    def test_compare_threshold_flag(self, tmp_path, capsys):
        baseline = _history()
        current = copy.deepcopy(baseline)
        for config in current["configs"]:
            config["total_seconds"] *= 2
        base_path = self._write(tmp_path, "base.json", baseline)
        cur_path = self._write(tmp_path, "cur.json", current)
        args = ["bench", "compare", "--baseline", base_path,
                "--current", cur_path, "--threshold", "3.0"]
        assert main(args) == 0
        capsys.readouterr()

    def test_compare_requires_baseline(self, capsys):
        assert main(["bench", "compare"]) == 2
        assert "--baseline" in capsys.readouterr().err

    def test_compare_rejects_invalid_history(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": BENCH_FORMAT}))
        assert main(["bench", "compare", "--baseline", str(path)]) == 2
        assert "invalid bench-history" in capsys.readouterr().err

    def test_bench_without_dataset_or_action_is_an_error(self, capsys):
        assert main(["bench"]) == 2
        assert "--dataset" in capsys.readouterr().err

    def test_report_validate_accepts_history(self, tmp_path, capsys):
        path = self._write(tmp_path, "BENCH_fig6.json", _history())
        assert main(["report", path, "--validate"]) == 0
        assert "bench-history" in capsys.readouterr().out

    def test_report_validate_rejects_bad_history_with_exit_2(
        self, tmp_path, capsys
    ):
        doc = _history()
        del doc["machine"]
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps(doc))
        assert main(["report", str(path), "--validate"]) == 2
        err = capsys.readouterr().err
        assert "invalid bench-history" in err
