"""Unit tests for plan assembly and validation."""

import numpy as np
import pytest

from repro.ccsr import CCSRStore
from repro.core import CSCE, Variant
from repro.core.plan import PREDECESSORS, SUCCESSORS
from repro.errors import PlanError
from repro.graph import Graph

from conftest import make_fig1_graph


@pytest.fixture
def fig1_engine():
    return CSCE(make_fig1_graph())


def ab_pattern():
    p = Graph()
    p.add_vertices(["A", "B"])
    p.add_edge(0, 1, directed=True)
    return p


class TestAssembly:
    def test_backward_constraints_reference_earlier_positions(self, fig1_engine):
        p = make_fig1_graph()  # match the graph in itself
        plan = fig1_engine.build_plan(p, Variant.EDGE_INDUCED)
        plan.validate()
        position = plan.position
        for pos, constraints in enumerate(plan.backward):
            for c in constraints:
                assert position[c.prior] < pos

    def test_first_position_has_pool(self, fig1_engine):
        plan = fig1_engine.build_plan(ab_pattern(), Variant.EDGE_INDUCED)
        pool = plan.first_candidates[0]
        assert pool is not None and len(pool) > 0
        assert plan.backward[0] == []

    def test_directed_edge_direction_resolution(self, fig1_engine):
        p = ab_pattern()
        plan = fig1_engine.build_plan(p, Variant.EDGE_INDUCED)
        constraint = plan.backward[1][0]
        if plan.order == [0, 1]:
            assert constraint.direction == SUCCESSORS
        else:
            assert constraint.direction == PREDECESSORS

    def test_impossible_edge_detected(self, fig1_engine):
        p = Graph()
        p.add_vertices(["C", "D"])
        p.add_edge(0, 1)
        plan = fig1_engine.build_plan(p, Variant.EDGE_INDUCED)
        assert plan.impossible()

    def test_memo_specs_shared_by_nec_twins(self, fig1_engine):
        # Star A with two B out-neighbors: the two B leaves are
        # NEC-equivalent and must share a memo spec.
        p = Graph()
        p.add_vertices(["A", "B", "B"])
        p.add_edge(0, 1, directed=True)
        p.add_edge(0, 2, directed=True)
        plan = fig1_engine.build_plan(p, Variant.EDGE_INDUCED)
        positions = [plan.position[1], plan.position[2]]
        assert plan.memo_specs[positions[0]] == plan.memo_specs[positions[1]]

    def test_memo_priors_cover_negations(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        p = Graph.from_edges(3, [(0, 1), (1, 2)])
        plan = CSCE(g).build_plan(p, Variant.VERTEX_INDUCED)
        for pos in range(3):
            neg_priors = {c.prior for c in plan.negations[pos]}
            assert neg_priors <= set(plan.memo_priors[pos])

    def test_plan_records_descendants(self, fig1_engine):
        plan = fig1_engine.build_plan(ab_pattern(), Variant.EDGE_INDUCED)
        assert set(plan.descendant_sizes) == {0, 1}

    def test_validate_rejects_bad_order(self, fig1_engine):
        plan = fig1_engine.build_plan(ab_pattern(), Variant.EDGE_INDUCED)
        plan.order = [1, 1]
        with pytest.raises(PlanError):
            plan.validate()


class TestPlannerConfigs:
    def test_unknown_planner_rejected(self, fig1_engine):
        with pytest.raises(PlanError, match="unknown planner"):
            fig1_engine.build_plan(ab_pattern(), planner="qp")

    @pytest.mark.parametrize("planner", ["csce", "ri", "ri_cluster", "rm"])
    def test_all_planners_produce_valid_plans(self, fig1_engine, planner):
        plan = fig1_engine.build_plan(
            ab_pattern(), Variant.EDGE_INDUCED, planner=planner
        )
        plan.validate()
        assert plan.planner_name == planner

    @pytest.mark.parametrize("planner", ["csce", "ri", "ri_cluster", "rm"])
    def test_all_planners_same_count(self, planner):
        from repro.graph.generators import erdos_renyi
        from repro.graph.sampling import sample_pattern

        g = erdos_renyi(20, 50, num_labels=2, seed=9)
        p = sample_pattern(g, 4, rng=0)
        engine = CSCE(g)
        reference = engine.match(p, "edge_induced", count_only=True).count
        assert (
            engine.match(
                p, "edge_induced", count_only=True, planner=planner
            ).count
            == reference
        )

    def test_prebuilt_plan_reuse(self, fig1_engine):
        p = ab_pattern()
        plan = fig1_engine.build_plan(p, Variant.EDGE_INDUCED)
        direct = fig1_engine.match(p, Variant.EDGE_INDUCED)
        reused = fig1_engine.match(p, Variant.EDGE_INDUCED, plan=plan)
        assert direct.count == reused.count

    def test_plan_variant_mismatch_rejected(self, fig1_engine):
        p = ab_pattern()
        plan = fig1_engine.build_plan(p, Variant.EDGE_INDUCED)
        with pytest.raises(PlanError, match="plan was built"):
            fig1_engine.match(p, Variant.HOMOMORPHIC, plan=plan)


class TestFirstCandidatePool:
    def test_pool_label_filtered_for_undirected_edge(self):
        g = Graph()
        g.add_vertices(["A", "B", "B"])
        g.add_edge(0, 1)
        g.add_edge(0, 2)
        p = Graph()
        p.add_vertices(["B", "A"])
        p.add_edge(0, 1)
        plan = CSCE(g).build_plan(p, Variant.EDGE_INDUCED)
        first = plan.order[0]
        pool = plan.first_candidates[0]
        labels = {g.vertex_label(v) for v in pool.tolist()}
        assert labels == {p.vertex_label(first)}

    def test_isolated_pattern_vertex_pool_falls_back_to_label(self):
        g = Graph()
        g.add_vertices(["A", "A", "B"])
        g.add_edge(0, 2)
        p = Graph()
        p.add_vertices(["A", "B", "A"])  # vertex 2 is isolated
        p.add_edge(0, 1)
        plan = CSCE(g).build_plan(p, Variant.EDGE_INDUCED)
        pos = plan.position[2]
        pool = plan.first_candidates[pos]
        assert set(pool.tolist()) == {0, 1}
