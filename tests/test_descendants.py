"""Unit tests for ComputeDescendant (Algorithm 3)."""

from repro.core.dag import DependencyDAG
from repro.core.descendants import compute_descendant_sizes, compute_descendants


def chain(n: int) -> DependencyDAG:
    dag = DependencyDAG(range(n))
    for i in range(n - 1):
        dag.add_edge(i, i + 1)
    return dag


class TestDescendants:
    def test_chain_sizes(self):
        sizes = compute_descendant_sizes(chain(4))
        assert sizes == {0: 3, 1: 2, 2: 1, 3: 0}

    def test_star_from_center(self):
        dag = DependencyDAG(range(4))
        for leaf in (1, 2, 3):
            dag.add_edge(0, leaf)
        sizes = compute_descendant_sizes(dag)
        assert sizes == {0: 3, 1: 0, 2: 0, 3: 0}

    def test_shared_descendants_counted_once(self):
        # Diamond: 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3.
        dag = DependencyDAG(range(4))
        dag.add_edge(0, 1)
        dag.add_edge(0, 2)
        dag.add_edge(1, 3)
        dag.add_edge(2, 3)
        sizes = compute_descendant_sizes(dag)
        assert sizes[0] == 3  # 3 counted once despite two paths
        assert sizes[1] == sizes[2] == 1

    def test_empty_dag(self):
        dag = DependencyDAG(range(3))
        assert compute_descendant_sizes(dag) == {0: 0, 1: 0, 2: 0}

    def test_descendant_masks(self):
        dag = chain(3)
        masks = compute_descendants(dag)
        assert masks[0] == (1 << 1) | (1 << 2)
        assert masks[2] == 0

    def test_matches_reachability(self):
        import random

        rng = random.Random(3)
        for _ in range(10):
            n = 8
            dag = DependencyDAG(range(n))
            for i in range(n):
                for j in range(i + 1, n):
                    if rng.random() < 0.3:
                        dag.add_edge(i, j)
            masks = compute_descendants(dag)
            assert masks == dag.reachability()
