"""Tests for seeded execution and continuous (delta) matching."""

import random

import pytest

from repro.core import CSCE, ContinuousMatcher, embeddings_containing_edge
from repro.graph import Edge, Graph
from repro.graph.patterns import by_name, path

from conftest import make_random_graph


class TestSeededMatching:
    def test_seed_restricts_to_extensions(self, square_with_diagonal):
        engine = CSCE(square_with_diagonal)
        p = path(3)
        full = engine.match(p, "edge_induced")
        seeded = engine.match(p, "edge_induced", seed={1: 0})
        expected = [m for m in full.embeddings if m[1] == 0]
        assert sorted(map(sorted, (m.items() for m in seeded.embeddings))) == sorted(
            map(sorted, (m.items() for m in expected))
        )

    def test_invalid_seed_yields_nothing(self, square_with_diagonal):
        engine = CSCE(square_with_diagonal)
        p = path(3)
        # Vertex 1 of C4+diag has degree 2 — pinning the path *center* on a
        # data vertex works, but pinning onto a non-candidate (wrong label
        # universe) must not:
        g = Graph()
        g.add_vertices(["X", "Y"])
        g.add_edge(0, 1)
        e = CSCE(g)
        q = Graph()
        q.add_vertices(["X", "Y"])
        q.add_edge(0, 1)
        assert e.match(q, seed={0: 1}).count == 0  # label mismatch
        assert e.match(q, seed={0: 0}).count == 1

    def test_multi_vertex_seed(self, square_with_diagonal):
        engine = CSCE(square_with_diagonal)
        tri = by_name("triangle")
        seeded = engine.match(tri, seed={0: 0, 1: 1})
        # Triangles containing the edge 0-1 with that orientation: only
        # {0,1,2}; third vertex is forced.
        assert seeded.count == 1
        assert seeded.embeddings[0][2] == 2

    def test_seed_respects_injectivity(self, square_with_diagonal):
        engine = CSCE(square_with_diagonal)
        p = path(3)
        seeded = engine.match(p, "edge_induced", seed={0: 2, 2: 2})
        assert seeded.count == 0  # same image twice under injectivity

    def test_seed_allowed_in_homomorphism(self, square_with_diagonal):
        engine = CSCE(square_with_diagonal)
        p = path(3)
        seeded = engine.match(p, "homomorphic", seed={0: 2, 2: 2})
        assert seeded.count > 0

    def test_seeded_count_only(self, square_with_diagonal):
        engine = CSCE(square_with_diagonal)
        p = path(3)
        enumerated = engine.match(p, seed={1: 0}).count
        counted = engine.match(p, seed={1: 0}, count_only=True).count
        assert counted == enumerated


class TestEmbeddingsContainingEdge:
    def test_matches_filtered_full_enumeration(self):
        g = make_random_graph(12, 26, seed=81)
        engine = CSCE(g)
        tri = by_name("triangle")
        edge = next(iter(g.edges()))
        delta = embeddings_containing_edge(engine, tri, edge)
        full = engine.match(tri)

        def uses_edge(mapping):
            pairs = set()
            vertices = list(mapping.values())
            for i, a in enumerate(vertices):
                for b in vertices[i + 1 :]:
                    pairs.add(frozenset((a, b)))
            return frozenset((edge.src, edge.dst)) in pairs

        # Every triangle whose mapped edge set covers the data edge must
        # appear, and nothing else can (triangles map all their pairs).
        expected = [m for m in full.embeddings if uses_edge(m)]
        assert delta.count == len(expected)

    def test_labels_prune_pins(self):
        g = Graph()
        g.add_vertices(["A", "B", "C"])
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        engine = CSCE(g)
        p = Graph()
        p.add_vertices(["A", "B"])
        p.add_edge(0, 1)
        delta = embeddings_containing_edge(engine, p, Edge(1, 2, None, False))
        assert delta.pins_tried == 0
        assert delta.count == 0


class TestContinuousMatcher:
    def _totals_agree(self, matcher: ContinuousMatcher):
        fresh = matcher.engine.count(matcher.pattern, matcher.variant)
        assert matcher.total == fresh

    def test_insert_reports_created_embeddings(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        engine = CSCE(g)
        matcher = ContinuousMatcher(engine, by_name("triangle"))
        assert matcher.total == 0
        delta = matcher.insert(0, 2)
        assert delta.count == 6  # one triangle, six mappings
        self._totals_agree(matcher)

    def test_remove_reports_destroyed_embeddings(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        engine = CSCE(g)
        matcher = ContinuousMatcher(engine, by_name("triangle"))
        assert matcher.total == 6
        delta = matcher.remove(0, 1)
        assert delta.count == 6
        assert matcher.total == 0
        self._totals_agree(matcher)

    def test_random_update_stream(self):
        rng = random.Random(9)
        g = make_random_graph(10, 14, seed=82)
        engine = CSCE(g)
        matcher = ContinuousMatcher(engine, path(3))
        present = {(min(e.src, e.dst), max(e.src, e.dst)) for e in g.edges()}
        for _ in range(20):
            a, b = rng.randrange(10), rng.randrange(10)
            if a == b:
                continue
            key = (min(a, b), max(a, b))
            if key in present:
                matcher.remove(key[0], key[1])
                present.discard(key)
            else:
                matcher.insert(key[0], key[1])
                present.add(key)
            self._totals_agree(matcher)

    def test_vertex_induced_rejected(self):
        g = make_random_graph(8, 12, seed=83)
        with pytest.raises(ValueError, match="not edge-local"):
            ContinuousMatcher(CSCE(g), path(3), "vertex_induced")

    def test_homomorphic_stream(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2)])
        matcher = ContinuousMatcher(CSCE(g), path(3), "homomorphic")
        before = matcher.total
        delta = matcher.insert(2, 3)
        assert matcher.total == before + delta.count
        self._totals_agree(matcher)
