"""Unit tests for the benchmark harness and table rendering."""

import pytest

from repro.bench import ENGINES, ExperimentRecord, make_engine, run_task, sweep
from repro.bench.harness import average_by
from repro.bench.tables import format_table, print_series, print_table
from repro.errors import VariantError
from repro.graph import Graph

from conftest import make_random_graph


@pytest.fixture(scope="module")
def graph():
    return make_random_graph(20, 45, num_labels=2, seed=31)


@pytest.fixture(scope="module")
def pattern():
    return Graph.from_edges(3, [(0, 1), (1, 2)], vertex_labels=[0, 0, 0])


class TestEngineRegistry:
    def test_all_seven_paper_engines_registered(self):
        assert set(ENGINES) == {
            "CSCE",
            "GraphPi",
            "Graphflow",
            "GuP",
            "RapidMatch",
            "VEQ",
            "VF3",
        }

    def test_make_engine(self, graph):
        engine = make_engine("CSCE", graph)
        assert hasattr(engine, "match")

    def test_unknown_engine(self, graph):
        with pytest.raises(VariantError):
            make_engine("Peregrine", graph)


class TestRunTask:
    def test_records_metrics(self, graph, pattern):
        engine = make_engine("CSCE", graph)
        record = run_task(
            "fig6", "CSCE", engine, "test", pattern, "edge_induced", time_limit=10
        )
        assert record.embeddings > 0
        assert record.total_seconds > 0
        assert not record.unsupported

    def test_unsupported_flagged_not_raised(self, graph, pattern):
        engine = make_engine("VF3", graph)
        record = run_task(
            "fig6", "VF3", engine, "test", pattern, "edge_induced"
        )
        assert record.unsupported
        assert record.row()["status"] == "n/a"

    def test_timeout_records_time_limit(self, pattern):
        from repro.graph.generators import power_law_graph

        big = power_law_graph(500, 6, seed=2)
        engine = make_engine("CSCE", big)
        from repro.graph.sampling import sample_pattern

        hard = sample_pattern(big, 10, rng=0, style="dense")
        record = run_task(
            "fig6", "CSCE", engine, "big", hard, "edge_induced", time_limit=0.05
        )
        if record.timed_out:
            assert record.total_seconds == 0.05
            assert record.row()["status"] == "timeout"

    def test_throughput(self, graph, pattern):
        engine = make_engine("CSCE", graph)
        record = run_task(
            "fig8", "CSCE", engine, "test", pattern, "edge_induced",
            max_embeddings=50,
        )
        if record.execute_seconds > 0:
            assert record.throughput == pytest.approx(
                record.embeddings / record.execute_seconds
            )


class TestSweep:
    def test_sweep_covers_all_pairs(self, graph, pattern):
        records = sweep(
            "fig6", graph, [pattern, pattern], ["CSCE", "GuP"], "edge_induced",
            time_limit=10,
        )
        assert len(records) == 4
        engines = {r.engine for r in records}
        assert engines == {"CSCE", "GuP"}

    def test_engines_agree_within_sweep(self, graph, pattern):
        records = sweep(
            "fig6", graph, [pattern], ["CSCE", "GuP", "RapidMatch", "VEQ"],
            "edge_induced", time_limit=10,
        )
        counts = {r.embeddings for r in records if not r.unsupported}
        assert len(counts) == 1

    def test_average_by(self, graph, pattern):
        records = sweep(
            "fig6", graph, [pattern, pattern], ["CSCE"], "edge_induced",
            time_limit=10,
        )
        summary = average_by(records, key=lambda r: (r.engine, r.pattern_size))
        assert ("CSCE", 3) in summary
        assert summary[("CSCE", 3)]["n"] == 2


class TestTables:
    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "bb": "xy"}, {"a": 100, "bb": "z"}])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4

    def test_empty_rows(self):
        assert format_table([]) == "(no rows)"

    def test_print_table_with_title(self, capsys):
        print_table([{"x": 1}], title="Demo")
        out = capsys.readouterr().out
        assert "=== Demo ===" in out
        assert "x" in out

    def test_print_series(self, capsys):
        print_series(
            "Fig X", "engine", [4, 8], {"CSCE": [0.1, 0.2], "VEQ": [1.0, None]}
        )
        out = capsys.readouterr().out
        assert "CSCE" in out and "VEQ" in out
        assert "-" in out  # None rendered as dash


class TestSaveRecords:
    def test_json_roundtrip(self, graph, pattern, tmp_path):
        import json

        from repro.bench.harness import save_records

        records = sweep("x", graph, [pattern], ["CSCE"], "edge_induced", time_limit=10)
        path = tmp_path / "records.json"
        save_records(records, str(path))
        loaded = json.loads(path.read_text())
        assert len(loaded) == 1
        assert loaded[0]["engine"] == "CSCE"
        assert "extra" in loaded[0]

    def test_csv_has_header(self, graph, pattern, tmp_path):
        from repro.bench.harness import save_records

        records = sweep("x", graph, [pattern], ["CSCE"], "edge_induced", time_limit=10)
        path = tmp_path / "records.csv"
        save_records(records, str(path))
        lines = path.read_text().splitlines()
        assert lines[0].startswith("experiment,")
        assert len(lines) == 2

    def test_empty_csv(self, tmp_path):
        from repro.bench.harness import save_records

        path = tmp_path / "empty.csv"
        save_records([], str(path))
        assert path.read_text() == ""

    def test_unknown_format(self, tmp_path):
        import pytest as _pytest

        from repro.bench.harness import save_records

        with _pytest.raises(ValueError):
            save_records([], str(tmp_path / "x.bin"), fmt="parquet")
