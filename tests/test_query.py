"""Tests for the named-binding query API."""

import pytest

from repro.core import CSCE
from repro.graph import Graph


@pytest.fixture
def collab_engine():
    g = Graph()
    a, b, c = g.add_vertices(["P", "P", "P"])
    j1, j2 = g.add_vertices(["J", "J"])
    g.add_edge(a, b, label="knows")
    g.add_edge(b, c, label="knows")
    g.add_edge(a, j1, label="works_on", directed=True)
    g.add_edge(b, j1, label="works_on", directed=True)
    g.add_edge(c, j2, label="works_on", directed=True)
    return CSCE(g)


class TestQuery:
    def test_rows_have_named_columns(self, collab_engine):
        result = collab_engine.query(
            "(x:P)-[:knows]-(y:P), (x)-[:works_on]->(j:J), (y)-[:works_on]->(j)"
        )
        assert result.columns == ["j", "x", "y"]
        assert result.count == 2
        assert {tuple(sorted(r.items())) for r in result} == {
            (("j", 3), ("x", 0), ("y", 1)),
            (("j", 3), ("x", 1), ("y", 0)),
        }

    def test_anonymous_vertices_dropped_from_rows(self, collab_engine):
        # Anonymous nodes still need a label (matching is label-exact; the
        # DSL's () defaults to label 0) — so give the project its label.
        result = collab_engine.query("(x:P)-[:works_on]->(:J)")
        assert result.columns == ["x"]
        assert result.count == 3
        assert all(set(row) == {"x"} for row in result)

    def test_distinct_projection(self, collab_engine):
        result = collab_engine.query("(x:P)-[:knows]-(y:P)")
        assert result.distinct("x") == {(0,), (1,), (2,)}
        assert len(result.distinct()) == result.count

    def test_variant_pass_through(self, collab_engine):
        homo = collab_engine.query("(x:P)-[:knows]-(y:P)", "homomorphic")
        edge = collab_engine.query("(x:P)-[:knows]-(y:P)", "edge_induced")
        assert homo.count >= edge.count

    def test_seed_by_name(self, collab_engine):
        result = collab_engine.query("(x:P)-[:knows]-(y:P)", seed={"x": 0})
        assert all(row["x"] == 0 for row in result)
        assert result.count == 1

    def test_seed_unknown_name(self, collab_engine):
        with pytest.raises(KeyError, match="does not appear"):
            collab_engine.query("(x:P)--(y:P)", seed={"zz": 0})

    def test_limits_pass_through(self, collab_engine):
        result = collab_engine.query(
            "(x:P)-[:knows]-(y:P)", max_embeddings=1
        )
        assert result.count == 1
        assert result.truncated

    def test_len_and_iter(self, collab_engine):
        result = collab_engine.query("(x:P)-[:knows]-(y:P)")
        assert len(result) == result.count
        assert all(isinstance(row, dict) for row in result)

    def test_repr(self, collab_engine):
        assert "rows" in repr(collab_engine.query("(x:P)--(y:P)"))
