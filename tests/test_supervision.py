"""Self-healing pool supervision: stall watchdog, poison-unit quarantine,
and retrying cluster reads.

The invariant under test everywhere here extends the pool's exactness
contract to degraded runs: whatever combination of injected faults fires
(a hung worker, a unit that fails every attempt, transient cluster-read
errors), a supervised match must (a) complete without ``PoolError``,
(b) report the degradation through typed channels (stop reason,
counters, flight-recorder events, quarantine residue files), and
(c) conserve the count — pool count plus replayed residue count equals
the fault-free single-process count *exactly*.
"""

from __future__ import annotations

import os
import time

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.csce import CSCE
from repro.engine.checkpoint import load_quarantine_dir
from repro.engine.governor import RetryPolicy
from repro.engine.pool import PoolMonitor
from repro.engine.results import STOP_QUARANTINED, STOP_REASONS
from repro.errors import CheckpointError, ClusterReadError
from repro.graph.patterns import CATALOG
from repro.obs import Observation, build_run_report, validate_run_report
from repro.obs.inspect import MatchInspector, render_top
from repro.obs.report import _STOP_REASONS, robustness_problems
from repro.testing import faults

from conftest import make_random_graph


@pytest.fixture(scope="module")
def graph():
    return make_random_graph(150, 900, num_labels=0, seed=11)


@pytest.fixture(scope="module")
def engine(graph):
    return CSCE(graph)


@pytest.fixture(scope="module")
def reference(engine):
    """The fault-free single-process count every degraded run must fold
    back to."""
    return engine.match(
        CATALOG["path4"](), "homomorphic", count_only=True
    ).count


def hang_worker(worker_id, seconds=30.0):
    """A pool.worker_beat action hanging one specific worker. Gated on
    the worker id because respawned workers fork from the parent's
    injector (acted=0): an ungated rule would re-fire in the respawn."""

    def action(rule, site, ctx):
        if ctx.get("worker") == worker_id:
            time.sleep(seconds)

    return action


def poison_unit(unit_id):
    """A pool.worker_beat action failing one unit on every attempt."""

    def action(rule, site, ctx):
        if ctx.get("unit") == unit_id:
            raise RuntimeError(f"injected poison in unit {unit_id}")

    return action


# ---------------------------------------------------------------------------
# RetryPolicy: bounded, seeded, deadline-aware backoff
# ---------------------------------------------------------------------------
class TestRetryPolicy:
    def test_same_seed_same_backoff_sequence(self):
        a = RetryPolicy(max_attempts=5, seed=42)
        b = RetryPolicy(max_attempts=5, seed=42)
        assert [a.backoff(k) for k in range(1, 5)] == \
            [b.backoff(k) for k in range(1, 5)]

    def test_backoff_is_bounded_by_max_delay(self):
        policy = RetryPolicy(base_delay=0.01, max_delay=0.05, seed=0)
        assert all(0.0 <= policy.backoff(k) <= 0.05 for k in range(1, 20))

    def test_absorbs_transient_failures(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.0, seed=0)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise ClusterReadError("transient")
            return "ok"

        assert policy.run(flaky, retry_on=(ClusterReadError,)) == "ok"
        assert calls["n"] == 3
        assert policy.retries == 2

    def test_attempt_budget_exhausted_reraises(self):
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, seed=0)

        def always():
            raise ClusterReadError("persistent")

        with pytest.raises(ClusterReadError):
            policy.run(always, retry_on=(ClusterReadError,))
        assert policy.retries == 1

    def test_non_matching_error_escapes_immediately(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.0, seed=0)

        def wrong():
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            policy.run(wrong, retry_on=(ClusterReadError,))
        assert policy.retries == 0

    def test_expired_deadline_forbids_backoff(self):
        # A deadline already in the past: the first failure re-raises
        # instead of sleeping the run's remaining budget away.
        policy = RetryPolicy(
            max_attempts=5, base_delay=0.01, seed=0,
            deadline=time.perf_counter(),
        )

        def always():
            raise ClusterReadError("transient")

        with pytest.raises(ClusterReadError):
            policy.run(always, retry_on=(ClusterReadError,))
        assert policy.retries == 0

    def test_with_deadline_copies_knobs(self):
        policy = RetryPolicy(
            max_attempts=7, base_delay=0.02, max_delay=0.5,
            jitter=0.25, seed=9,
        )
        bound = policy.with_deadline(123.0)
        assert bound.deadline == 123.0
        assert (bound.max_attempts, bound.base_delay, bound.max_delay,
                bound.jitter, bound.seed) == (7, 0.02, 0.5, 0.25, 9)
        # Fresh retry accounting and RNG: the original is untouched.
        assert bound.retries == 0 and bound is not policy

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


# ---------------------------------------------------------------------------
# Retrying cluster reads: transient faults absorbed, persistent escape
# ---------------------------------------------------------------------------
class TestRetryingClusterReads:
    def test_transient_read_faults_absorbed(self, graph, reference):
        # Fresh session so compile actually re-reads clusters.
        engine = CSCE(graph)
        obs = Observation(trace=True)
        injector = faults.FaultInjector(seed=9).on(
            "ccsr.read_cluster", faults.flaky_cluster_read(2)
        )
        with injector:
            result = engine.match(
                CATALOG["path4"](), "homomorphic", count_only=True, obs=obs
            )
        assert result.count == reference
        assert result.stop_reason is None
        assert obs.counters.snapshot()["ccsr.read_retries"] == 2

    def test_persistent_read_fault_escapes(self, graph):
        # More consecutive failures than the default attempt budget on a
        # single cluster: the retry policy re-raises instead of looping.
        engine = CSCE(graph)
        injector = faults.FaultInjector(seed=9).on(
            "ccsr.read_cluster", faults.flaky_cluster_read(10)
        )
        with injector, pytest.raises(ClusterReadError):
            engine.match(CATALOG["path4"](), "homomorphic", count_only=True)


# ---------------------------------------------------------------------------
# Stall watchdog: hung workers are killed, their units re-dispatched
# ---------------------------------------------------------------------------
class TestStallWatchdog:
    def test_hung_worker_killed_and_recovered_exact(self, engine, reference):
        obs = Observation(trace=True, heartbeat_interval=0.05)
        monitor = PoolMonitor()
        injector = faults.FaultInjector(seed=7).on(
            "pool.worker_beat", hang_worker("w0"), times=1
        )
        with injector:
            result = engine.match(
                CATALOG["path4"](), "homomorphic", count_only=True,
                workers=2, stall_timeout=0.5, obs=obs, pool_monitor=monitor,
            )
        assert result.count == reference
        assert result.stop_reason is None
        names = [e["name"] for e in obs.recorder.as_dict()["events"]]
        assert names.count("worker_stall") == 1
        assert obs.counters.snapshot()["pool.stall_kills"] == 1
        health = monitor.health()
        assert health["stall_timeout"] == 0.5
        assert health["stall_kills"] == 1
        assert health["quarantined_units"] == 0

    def test_clean_run_triggers_zero_kills(self, engine, reference):
        # The perf-smoke invariant: an armed watchdog over a healthy
        # heartbeating workload must never fire.
        obs = Observation(trace=True, heartbeat_interval=0.05)
        result = engine.match(
            CATALOG["path4"](), "homomorphic", count_only=True,
            workers=2, stall_timeout=5.0, obs=obs,
        )
        assert result.count == reference
        assert "pool.stall_kills" not in obs.counters.snapshot()
        names = [e["name"] for e in obs.recorder.as_dict()["events"]]
        assert "worker_stall" not in names

    def test_watchdog_disarmed_by_default(self, engine):
        monitor = PoolMonitor()
        engine.match(
            CATALOG["triangle"](), "homomorphic", count_only=True,
            workers=2, pool_monitor=monitor,
        )
        health = monitor.health()
        assert health["stall_timeout"] is None
        assert health["stall_kills"] == 0


# ---------------------------------------------------------------------------
# Poison-unit quarantine: typed degradation instead of PoolError
# ---------------------------------------------------------------------------
class TestQuarantine:
    def quarantined_run(self, engine, tmp_path, obs=None):
        cp_dir = tmp_path / "residue"
        injector = faults.FaultInjector(seed=5).on(
            "pool.worker_beat", poison_unit(1)
        )
        with injector:
            result = engine.match(
                CATALOG["path4"](), "homomorphic", count_only=True,
                workers=2, pool_checkpoint_dir=str(cp_dir),
                max_unit_attempts=2, obs=obs,
            )
        return result, cp_dir

    def test_poison_unit_quarantined_and_match_completes(
        self, engine, reference, tmp_path
    ):
        obs = Observation(trace=True)
        result, cp_dir = self.quarantined_run(engine, tmp_path, obs=obs)
        assert result.stop_reason == STOP_QUARANTINED == "quarantined"
        assert result.quarantined_units == 1
        assert result.shards["quarantined_units"] == 1
        assert 0 < result.count < reference
        assert obs.counters.snapshot()["pool.quarantined_units"] == 1
        names = [e["name"] for e in obs.recorder.as_dict()["events"]]
        assert names.count("quarantine") == 1
        residue = load_quarantine_dir(cp_dir)
        assert len(residue) == 1
        path, payload = residue[0]
        assert os.path.basename(path) == "quarantine-0001.json"
        block = payload["quarantine"]
        assert block["unit"] == 1 and block["attempts"] == 2
        assert "poison" in block["error"]
        assert payload["progress"]["stop_reason"] == STOP_QUARANTINED

    def test_quarantine_without_checkpoint_dir_still_completes(
        self, engine, reference
    ):
        injector = faults.FaultInjector(seed=5).on(
            "pool.worker_beat", poison_unit(1)
        )
        with injector:
            result = engine.match(
                CATALOG["path4"](), "homomorphic", count_only=True,
                workers=2, max_unit_attempts=2,
            )
        assert result.stop_reason == STOP_QUARANTINED
        assert result.quarantined_units == 1
        assert result.count < reference

    def test_retry_quarantined_folds_exact(
        self, engine, reference, tmp_path
    ):
        result, cp_dir = self.quarantined_run(engine, tmp_path)
        replay = engine.retry_quarantined(str(cp_dir))
        assert replay.stop_reason is None
        assert result.count + replay.count == reference
        # A complete replay consumes its residue files.
        assert not list(cp_dir.glob("quarantine-*.json"))

    def test_retry_quarantined_keep_files(self, engine, reference, tmp_path):
        result, cp_dir = self.quarantined_run(engine, tmp_path)
        replay = engine.retry_quarantined(str(cp_dir), keep_files=True)
        assert result.count + replay.count == reference
        assert list(cp_dir.glob("quarantine-*.json"))

    def test_retry_quarantined_rejects_empty_dir(self, engine, tmp_path):
        with pytest.raises(CheckpointError):
            engine.retry_quarantined(str(tmp_path))

    def test_quarantined_run_report_validates(self, engine, tmp_path):
        obs = Observation(trace=True)
        result, _ = self.quarantined_run(engine, tmp_path, obs=obs)
        obs.finish(result)
        report = build_run_report(
            result, engine="CSCE", obs=obs,
            config={"workers": 2, "stall_timeout": None,
                    "max_respawns": None, "max_unit_attempts": 2},
        )
        validate_run_report(report)
        assert robustness_problems(report) == []
        assert report["stop_reason"] == "quarantined"
        assert report["shards"]["quarantined_units"] == 1
        assert report["config"]["max_unit_attempts"] == 2


# ---------------------------------------------------------------------------
# All three legs at once, and the seeded fold property
# ---------------------------------------------------------------------------
class TestCombinedChaos:
    def test_three_fault_legs_at_once(self, graph, reference, tmp_path):
        # One hung worker + one poison unit + transient cluster-read
        # faults, in the same run: no PoolError, typed degradation,
        # and (match + retry-quarantined) reproduces the exact count.
        engine = CSCE(graph)  # fresh session: cluster reads re-run
        cp_dir = tmp_path / "residue"
        obs = Observation(trace=True, heartbeat_interval=0.05)
        injector = (
            faults.FaultInjector(seed=3)
            .on("ccsr.read_cluster", faults.flaky_cluster_read(2))
            .on("pool.worker_beat", hang_worker("w0"), times=1)
            .on("pool.worker_beat", poison_unit(1))
        )
        with injector:
            result = engine.match(
                CATALOG["path4"](), "homomorphic", count_only=True,
                workers=2, stall_timeout=0.5, max_unit_attempts=2,
                pool_checkpoint_dir=str(cp_dir), obs=obs,
            )
        assert result.stop_reason == STOP_QUARANTINED
        assert result.quarantined_units >= 1
        counters = obs.counters.snapshot()
        assert counters["ccsr.read_retries"] == 2
        assert counters["pool.stall_kills"] >= 1
        assert counters["pool.quarantined_units"] == result.quarantined_units
        replay = engine.retry_quarantined(str(cp_dir))
        assert replay.stop_reason is None
        assert result.count + replay.count == reference

    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[
            HealthCheck.function_scoped_fixture,
            HealthCheck.too_slow,
        ],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        workers=st.sampled_from([2, 4]),
        poisoned=st.integers(min_value=0, max_value=3),
    )
    def test_fold_property(
        self, graph, reference, tmp_path_factory, seed, workers, poisoned
    ):
        # For every (seed, workers, poisoned-unit): pool count plus
        # replayed residue count equals the fault-free count exactly.
        engine = CSCE(graph)
        cp_dir = tmp_path_factory.mktemp("fold") / "residue"
        obs = Observation(trace=False, heartbeat_interval=0.02)
        injector = (
            faults.FaultInjector(seed=seed)
            .on("ccsr.read_cluster", faults.flaky_cluster_read(1))
            .on("pool.worker_beat", hang_worker("w0"), times=1)
            .on("pool.worker_beat", poison_unit(poisoned))
        )
        with injector:
            result = engine.match(
                CATALOG["path4"](), "homomorphic", count_only=True,
                workers=workers, stall_timeout=0.5, max_unit_attempts=2,
                pool_checkpoint_dir=str(cp_dir), obs=obs,
            )
        assert result.stop_reason == STOP_QUARANTINED
        assert result.quarantined_units == 1
        replay = engine.retry_quarantined(str(cp_dir))
        assert replay.stop_reason is None
        assert result.count + replay.count == reference


# ---------------------------------------------------------------------------
# Registries and surfaces: stop reason, health command, top renderer
# ---------------------------------------------------------------------------
class TestSupervisionSurfaces:
    def test_quarantined_is_a_registered_stop_reason(self):
        assert STOP_QUARANTINED == "quarantined"
        assert STOP_QUARANTINED in STOP_REASONS
        # The report validator's literal copy must track the registry.
        assert tuple(_STOP_REASONS) == tuple(STOP_REASONS)

    def test_config_block_type_validation(self):
        bad = {
            "format": "x", "config": {
                "workers": 2, "stall_timeout": "fast",
                "max_unit_attempts": 3,
            },
        }
        problems = robustness_problems(bad)
        assert any("config.stall_timeout" in p for p in problems)
        good = {"format": "x", "config": {
            "workers": 2, "stall_timeout": 2.5,
            "max_respawns": None, "max_unit_attempts": 3,
        }}
        assert robustness_problems(good) == []

    def test_health_command_over_pool_monitor(self, engine):
        monitor = PoolMonitor()
        obs = Observation(trace=False, heartbeat_interval=0.05)
        engine.match(
            CATALOG["square"](), "homomorphic", count_only=True,
            workers=2, stall_timeout=10.0, obs=obs, pool_monitor=monitor,
        )
        inspector = MatchInspector(monitor, obs, worker="t").attach()
        payload = inspector.handle("health")
        assert payload["supervised"] is True
        assert payload["stall_timeout"] == 10.0
        assert payload["stall_kills"] == 0
        assert payload["quarantined_units"] == 0
        assert payload["respawns_left"] >= 0
        assert {row["worker"] for row in payload["workers"]} == {"w0", "w1"}
        for row in payload["workers"]:
            assert set(row) == {"worker", "state", "unit", "beat_age"}

    def test_render_top_shows_supervision_line(self):
        status = {
            "worker": "pool", "state": "running", "pid": 1, "clients": 1,
            "emitted": 10, "nodes": 20, "beats": 3, "elapsed_seconds": 1.0,
            "health": {"stall_timeout": 2.0, "stall_kills": 1,
                       "quarantined_units": 2, "respawns_left": 4},
            "workers": [
                {"worker": "w0", "pid": 11, "state": "busy", "unit": 3,
                 "units": 2, "emitted": 5, "nodes": 9, "beat_age": 0.07},
                {"worker": "w1", "pid": 12, "state": "idle", "unit": None,
                 "units": 1, "emitted": 5, "nodes": 11, "beat_age": None},
            ],
        }
        text = render_top(status)
        assert "supervision : watchdog 2s" in text
        assert "stall-kills 1" in text
        assert "quarantined 2" in text
        assert "respawns-left 4" in text
        header = [line for line in text.splitlines()
                  if line.startswith("worker")][0]
        assert header.rstrip().endswith("beat")
        assert "0.1s" in text  # w0's beat age, rendered to one decimal
