"""Coverage for small utilities not exercised elsewhere."""

import pytest

from repro.graph import Graph


class TestIterGraphFiles:
    def test_lists_sorted_graph_files(self, tmp_path):
        from repro.graph.io import iter_graph_files, save_graph

        g = Graph.from_edges(2, [(0, 1)])
        save_graph(g, tmp_path / "b.graph")
        save_graph(g, tmp_path / "a.graph")
        (tmp_path / "notes.txt").write_text("ignore me")
        found = list(iter_graph_files(tmp_path))
        assert [f.split("/")[-1] for f in found] == ["a.graph", "b.graph"]


class TestTablesFormatting:
    def test_print_series_custom_format(self, capsys):
        from repro.bench.tables import print_series

        print_series("T", "k", [1], {"s": [0.123456]}, fmt="{:.2f}")
        assert "0.12" in capsys.readouterr().out

    def test_format_table_explicit_columns(self):
        from repro.bench.tables import format_table

        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]


class TestClusterEdgeCases:
    def test_empty_cluster_arrays(self):
        from repro.ccsr import Cluster, ClusterKey

        cluster = Cluster(ClusterKey("A", "B", None, True), [], 5)
        assert cluster.num_entries == 0
        assert cluster.successors(0).shape == (0,)
        cluster.decompress()
        assert cluster.successors(4).shape == (0,)

    def test_repr(self):
        from repro.ccsr import Cluster, ClusterKey

        cluster = Cluster(ClusterKey("A", "B", None, True), [(0, 1)], 2)
        assert "entries=1" in repr(cluster)

    def test_nbytes_positive(self):
        from repro.ccsr import Cluster, ClusterKey

        cluster = Cluster(ClusterKey("A", "B", None, True), [(0, 1)], 2)
        assert cluster.nbytes() > 0
        before = cluster.nbytes()
        cluster.decompress()
        assert cluster.nbytes() > before


class TestPlanDescribe:
    def test_describe_mentions_every_step(self, square_with_diagonal):
        from repro.core import CSCE, Variant

        p = Graph.from_edges(3, [(0, 1), (1, 2)])
        plan = CSCE(square_with_diagonal).build_plan(p, Variant.EDGE_INDUCED)
        text = plan.describe()
        for pos in range(3):
            assert f"step {pos}:" in text
        assert "static pool" in text

    def test_describe_shows_negations(self):
        from repro.core import CSCE, Variant

        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        p = Graph.from_edges(3, [(0, 1), (1, 2)])
        plan = CSCE(g).build_plan(p, Variant.VERTEX_INDUCED)
        assert "negation probes" in plan.describe()


class TestDeltaResultShape:
    def test_count_property(self):
        from repro.core import DeltaResult
        from repro.graph import Edge

        delta = DeltaResult(
            edge=Edge(0, 1, None, False),
            embeddings=[{0: 1}, {0: 2}],
            pins_tried=1,
        )
        assert delta.count == 2


class TestVariantIteration:
    def test_three_variants(self):
        from repro.core import Variant

        assert len(list(Variant)) == 3


class TestEquivalenceStatsProperties:
    def test_compression_of_trivial_store(self):
        from repro.analysis import EquivalenceStats

        stats = EquivalenceStats(
            num_vertices=4,
            num_classes=4,
            largest_class=1,
            vertices_in_nontrivial_classes=0,
        )
        assert stats.compression == 1.0
        assert stats.nontrivial_fraction == 0.0
