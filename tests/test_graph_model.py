"""Unit tests for the Graph model."""

import pytest

from repro.errors import GraphError
from repro.graph import Edge, Graph


class TestConstruction:
    def test_add_vertex_returns_sequential_ids(self):
        g = Graph()
        assert g.add_vertex("A") == 0
        assert g.add_vertex("B") == 1
        assert g.num_vertices == 2

    def test_add_vertices_bulk(self):
        g = Graph()
        assert g.add_vertices(["A", "B", "C"]) == [0, 1, 2]
        assert g.vertex_label(2) == "C"

    def test_add_edge_basic(self):
        g = Graph()
        g.add_vertices([0, 0])
        e = g.add_edge(0, 1)
        assert e == Edge(0, 1, None, False)
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        g = Graph()
        g.add_vertex()
        with pytest.raises(GraphError, match="self-loop"):
            g.add_edge(0, 0)

    def test_missing_endpoint_rejected(self):
        g = Graph()
        g.add_vertex()
        with pytest.raises(GraphError, match="missing vertex"):
            g.add_edge(0, 3)

    def test_duplicate_edge_rejected(self):
        g = Graph()
        g.add_vertices([0, 0])
        g.add_edge(0, 1)
        with pytest.raises(GraphError, match="duplicate"):
            g.add_edge(0, 1)

    def test_duplicate_undirected_rejected_in_either_orientation(self):
        g = Graph()
        g.add_vertices([0, 0])
        g.add_edge(0, 1)
        with pytest.raises(GraphError, match="duplicate"):
            g.add_edge(1, 0)

    def test_reverse_directed_edge_allowed(self):
        g = Graph()
        g.add_vertices([0, 0])
        g.add_edge(0, 1, directed=True)
        g.add_edge(1, 0, directed=True)
        assert g.num_edges == 2

    def test_parallel_edges_with_different_labels_allowed(self):
        g = Graph()
        g.add_vertices([0, 0])
        g.add_edge(0, 1, label="x")
        g.add_edge(0, 1, label="y")
        assert g.num_edges == 2

    def test_from_edges_defaults(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        assert g.num_vertices == 3
        assert g.vertex_labels == [0, 0, 0]

    def test_from_edges_label_length_mismatch(self):
        with pytest.raises(GraphError):
            Graph.from_edges(3, [(0, 1)], vertex_labels=[0, 0])

    def test_from_edges_edge_label_mismatch(self):
        with pytest.raises(GraphError):
            Graph.from_edges(2, [(0, 1)], edge_labels=["a", "b"])


class TestAccessors:
    def test_heterogeneous_detection(self):
        homogeneous = Graph.from_edges(2, [(0, 1)])
        assert not homogeneous.is_heterogeneous
        labeled = Graph.from_edges(2, [(0, 1)], vertex_labels=["A", "B"])
        assert labeled.is_heterogeneous

    def test_is_directed(self):
        g = Graph.from_edges(2, [(0, 1)])
        assert not g.is_directed
        d = Graph.from_edges(2, [(0, 1)], directed=True)
        assert d.is_directed

    def test_neighbors_undirected(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        assert g.neighbors(1) == [0, 2]
        assert g.out_neighbors(1) == [0, 2]
        assert g.in_neighbors(1) == [0, 2]

    def test_neighbors_directed(self):
        g = Graph.from_edges(3, [(0, 1), (2, 1)], directed=True)
        assert g.out_neighbors(0) == [1]
        assert g.in_neighbors(1) == [0, 2]
        assert g.out_neighbors(1) == []
        assert g.neighbors(1) == [0, 2]

    def test_degree_counts_distinct_neighbors(self):
        g = Graph()
        g.add_vertices([0, 0])
        g.add_edge(0, 1, label="x")
        g.add_edge(0, 1, label="y")
        assert g.degree(0) == 1

    def test_has_edge_directional(self):
        g = Graph.from_edges(2, [(0, 1)], directed=True)
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)

    def test_edges_between(self):
        g = Graph()
        g.add_vertices([0, 0, 0])
        g.add_edge(0, 1, label="x")
        g.add_edge(1, 0, label="y", directed=True)
        between = g.edges_between(0, 1)
        assert len(between) == 2
        assert g.edges_between(0, 2) == []

    def test_incident_edges(self, fig1_graph):
        incident = fig1_graph.incident_edges(0)
        assert len(incident) == 5  # v1 touches v2, v6, v3, v10, v7(D)


class TestDerivedGraphs:
    def test_induced_subgraph(self, square_with_diagonal):
        sub = square_with_diagonal.induced_subgraph([0, 1, 2])
        assert sub.num_vertices == 3
        assert sub.num_edges == 3  # 0-1, 1-2, 0-2 all present

    def test_induced_subgraph_renumbers(self):
        g = Graph.from_edges(4, [(1, 3)], vertex_labels=list("abcd"))
        sub = g.induced_subgraph([3, 1])
        assert sub.vertex_labels == ["d", "b"]
        assert sub.num_edges == 1

    def test_induced_subgraph_duplicate_vertices(self, triangle):
        import pytest as _pytest

        with _pytest.raises(GraphError):
            triangle.induced_subgraph([0, 0])

    def test_edge_subgraph(self, square_with_diagonal):
        edges = [e for e in square_with_diagonal.edges()][:2]
        sub = square_with_diagonal.edge_subgraph(edges)
        assert sub.num_edges == 2

    def test_relabeled(self, triangle):
        out = triangle.relabeled(["X", "Y", "Z"])
        assert out.vertex_labels == ["X", "Y", "Z"]
        assert out.num_edges == triangle.num_edges

    def test_relabeled_length_check(self, triangle):
        with pytest.raises(GraphError):
            triangle.relabeled(["X"])

    def test_copy_is_independent(self, triangle):
        clone = triangle.copy()
        clone.add_vertex()
        assert clone.num_vertices == triangle.num_vertices + 1


class TestEquality:
    def test_equal_graphs(self):
        a = Graph.from_edges(3, [(0, 1), (1, 2)])
        b = Graph.from_edges(3, [(1, 0), (2, 1)])  # flipped undirected
        assert a == b

    def test_unequal_on_direction(self):
        a = Graph.from_edges(2, [(0, 1)], directed=True)
        b = Graph.from_edges(2, [(1, 0)], directed=True)
        assert a != b

    def test_graphs_unhashable(self, triangle):
        with pytest.raises(TypeError):
            hash(triangle)

    def test_repr_mentions_counts(self, triangle):
        assert "|V|=3" in repr(triangle)
