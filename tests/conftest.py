"""Shared fixtures and oracle implementations for the test suite.

The oracles are deliberately independent of the library's matching code:
``brute_count`` enumerates raw tuples with itertools, and the networkx
helpers delegate to ``GraphMatcher``. Any agreement between CSCE, the
baselines, and these oracles is therefore meaningful.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.graph.model import Graph


# ---------------------------------------------------------------------------
# Reference graphs
# ---------------------------------------------------------------------------
@pytest.fixture
def triangle() -> Graph:
    return Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def square_with_diagonal() -> Graph:
    return Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])


@pytest.fixture
def path3() -> Graph:
    return Graph.from_edges(3, [(0, 1), (1, 2)])


def make_fig1_graph() -> Graph:
    """An approximation of the paper's Fig. 1 data graph G.

    Ten vertices labeled A/B/C/D with a mix of directed and undirected
    edges, built so that the worked examples hold: v1 has two outgoing
    B-neighbors (v2, v6), v3 and v10 are syntactically equivalent
    C-neighbors of v1, and label-D vertices only connect to label-A ones.
    """
    g = Graph(name="fig1")
    labels = ["A", "B", "C", "A", "B", "B", "D", "A", "B", "C"]
    g.add_vertices(labels)
    for src, dst in [(0, 1), (0, 5), (3, 4), (7, 8)]:
        g.add_edge(src, dst, directed=True)  # A -> B edges
    for src, dst in [(0, 2), (0, 9)]:
        g.add_edge(src, dst)  # A -- C edges (v1-v3, v1-v10)
    for src, dst in [(0, 6), (7, 6)]:
        g.add_edge(src, dst)  # A -- D edges
    return g


@pytest.fixture
def fig1_graph() -> Graph:
    return make_fig1_graph()


def make_random_graph(
    num_vertices: int,
    num_edges: int,
    num_labels: int = 0,
    directed: bool = False,
    edge_labels: int = 0,
    seed: int = 0,
) -> Graph:
    """Uniform random simple graph with optional labels, for oracles."""
    rng = random.Random(seed)
    graph = Graph(name=f"rand-{seed}")
    graph.add_vertices(
        rng.randrange(num_labels) if num_labels else 0 for _ in range(num_vertices)
    )
    attempts = 0
    added = 0
    seen: set[tuple[int, int]] = set()
    while added < num_edges and attempts < num_edges * 20:
        attempts += 1
        a, b = rng.randrange(num_vertices), rng.randrange(num_vertices)
        if a == b:
            continue
        key = (a, b) if directed else (min(a, b), max(a, b))
        if key in seen:
            continue
        seen.add(key)
        label = rng.randrange(edge_labels) if edge_labels else None
        graph.add_edge(a, b, label=label, directed=directed)
        added += 1
    return graph


# ---------------------------------------------------------------------------
# Brute-force oracles
# ---------------------------------------------------------------------------
def _pair_descriptor(graph: Graph, a: int, b: int) -> tuple:
    entries = []
    for e in graph.edges_between(a, b):
        if e.directed:
            entries.append((e.label, "fwd" if (e.src, e.dst) == (a, b) else "rev"))
        else:
            entries.append((e.label, "und"))
    return tuple(sorted(entries, key=repr))


def _edge_maps(graph: Graph, a: int, b: int, e) -> bool:
    """Does pattern edge ``e`` (mapped u->a, v->b) exist in the data?"""
    for d in graph.edges_between(a, b):
        if d.label != e.label or d.directed != e.directed:
            continue
        if d.directed and (d.src, d.dst) != (a, b):
            continue
        return True
    return False


def brute_count(graph: Graph, pattern: Graph, variant: str) -> int:
    """Reference count by exhaustive enumeration (tiny inputs only)."""
    n, total_vertices = pattern.num_vertices, graph.num_vertices
    if variant == "homomorphic":
        candidates = itertools.product(range(total_vertices), repeat=n)
    else:
        candidates = itertools.permutations(range(total_vertices), n)
    count = 0
    for combo in candidates:
        if any(
            graph.vertex_label(combo[v]) != pattern.vertex_label(v)
            for v in pattern.vertices()
        ):
            continue
        if variant == "vertex_induced":
            ok = all(
                _pair_descriptor(pattern, i, j)
                == _pair_descriptor(graph, combo[i], combo[j])
                for i in range(n)
                for j in range(i + 1, n)
            )
        else:
            ok = all(
                _edge_maps(graph, combo[e.src], combo[e.dst], e)
                for e in pattern.edges()
            )
        if ok:
            count += 1
    return count


def to_networkx(graph: Graph):
    """Undirected unlabeled-edge view for networkx's GraphMatcher."""
    import networkx as nx

    nxg = nx.Graph()
    for v in graph.vertices():
        nxg.add_node(v, label=graph.vertex_label(v))
    for e in graph.edges():
        nxg.add_edge(e.src, e.dst)
    return nxg


def networkx_counts(graph: Graph, pattern: Graph) -> tuple[int, int]:
    """(vertex_induced, edge_induced) counts from networkx GraphMatcher.

    Only valid for undirected graphs without edge labels.
    """
    from networkx.algorithms import isomorphism as iso

    matcher = iso.GraphMatcher(
        to_networkx(graph),
        to_networkx(pattern),
        node_match=iso.categorical_node_match("label", None),
    )
    vertex_induced = sum(1 for _ in matcher.subgraph_isomorphisms_iter())
    edge_induced = sum(1 for _ in matcher.subgraph_monomorphisms_iter())
    return vertex_induced, edge_induced
