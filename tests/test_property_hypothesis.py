"""Property-based tests (hypothesis) on core data structures and invariants."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.ccsr import CCSRStore
from repro.core import CSCE, Variant, build_dag, compute_descendant_sizes
from repro.core.gcf import gcf_order
from repro.core.ldsf import ldsf_order
from repro.graph import Graph
from repro.graph.io import format_graph_text, parse_graph_text

from conftest import brute_count


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
@st.composite
def graphs(
    draw,
    max_vertices: int = 10,
    max_edges: int = 18,
    max_labels: int = 3,
    allow_directed: bool = True,
):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    num_labels = draw(st.integers(min_value=1, max_value=max_labels))
    labels = [draw(st.integers(min_value=0, max_value=num_labels - 1)) for _ in range(n)]
    g = Graph()
    g.add_vertices(labels)
    pair_strategy = st.tuples(
        st.integers(min_value=0, max_value=n - 1),
        st.integers(min_value=0, max_value=n - 1),
    )
    pairs = draw(st.lists(pair_strategy, max_size=max_edges))
    for a, b in pairs:
        if a == b:
            continue
        directed = draw(st.booleans()) if allow_directed else False
        try:
            g.add_edge(a, b, directed=directed)
        except Exception:
            continue
    return g


@st.composite
def graph_and_pattern(draw):
    g = draw(graphs(max_vertices=8, max_edges=14))
    k = draw(st.integers(min_value=2, max_value=min(4, g.num_vertices)))
    vertices = draw(
        st.permutations(range(g.num_vertices)).map(lambda p: list(p)[:k])
    )
    p = g.induced_subgraph(vertices)
    return g, p


_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ---------------------------------------------------------------------------
# CCSR invariants
# ---------------------------------------------------------------------------
class TestCCSRProperties:
    @given(graphs())
    @_SETTINGS
    def test_roundtrip(self, g):
        assert CCSRStore(g).to_graph() == g

    @given(graphs())
    @_SETTINGS
    def test_column_entries_twice_edges(self, g):
        store = CCSRStore(g)
        assert store.total_column_entries() == 2 * g.num_edges

    @given(graphs())
    @_SETTINGS
    def test_compressed_rows_bounded(self, g):
        store = CCSRStore(g)
        assert store.total_compressed_row_entries() <= 4 * g.num_edges

    @given(graphs())
    @_SETTINGS
    def test_neighbor_lists_sorted_unique(self, g):
        store = CCSRStore(g)
        for cluster in store.clusters.values():
            cluster.decompress()
            for v in range(store.num_vertices):
                nbrs = cluster.successors(v).tolist()
                assert nbrs == sorted(set(nbrs))


# ---------------------------------------------------------------------------
# I/O invariants
# ---------------------------------------------------------------------------
class TestIOProperties:
    @given(graphs())
    @_SETTINGS
    def test_text_roundtrip(self, g):
        assert parse_graph_text(format_graph_text(g)) == g


# ---------------------------------------------------------------------------
# Planner invariants
# ---------------------------------------------------------------------------
class TestPlannerProperties:
    @given(graph_and_pattern())
    @_SETTINGS
    def test_gcf_order_is_permutation(self, gp):
        _, p = gp
        assert sorted(gcf_order(p)) == list(range(p.num_vertices))

    @given(graph_and_pattern())
    @_SETTINGS
    def test_ldsf_emits_topological_order(self, gp):
        _, p = gp
        order = gcf_order(p)
        dag = build_dag(p, order, Variant.EDGE_INDUCED)
        final = ldsf_order(dag, p, descendant_sizes=compute_descendant_sizes(dag))
        assert dag.is_topological_order(final)

    @given(graph_and_pattern())
    @_SETTINGS
    def test_descendant_sizes_bounded(self, gp):
        _, p = gp
        dag = build_dag(p, gcf_order(p), Variant.EDGE_INDUCED)
        sizes = compute_descendant_sizes(dag)
        assert all(0 <= s < p.num_vertices for s in sizes.values())


# ---------------------------------------------------------------------------
# Matching invariants
# ---------------------------------------------------------------------------
class TestMatchingProperties:
    @given(graph_and_pattern())
    @_SETTINGS
    def test_counts_match_brute_force_all_variants(self, gp):
        g, p = gp
        engine = CSCE(g)
        for variant in ("edge_induced", "vertex_induced", "homomorphic"):
            assert engine.match(p, variant, count_only=True).count == brute_count(
                g, p, variant
            ), variant

    @given(graph_and_pattern())
    @_SETTINGS
    def test_enumeration_equals_counting(self, gp):
        g, p = gp
        engine = CSCE(g)
        for variant in ("edge_induced", "vertex_induced", "homomorphic"):
            assert (
                engine.match(p, variant).count
                == engine.match(p, variant, count_only=True).count
            )

    @given(graph_and_pattern())
    @_SETTINGS
    def test_variant_count_ordering(self, gp):
        g, p = gp
        engine = CSCE(g)
        vi = engine.count(p, "vertex_induced")
        ei = engine.count(p, "edge_induced")
        homo = engine.count(p, "homomorphic")
        assert vi <= ei <= homo

    @given(graph_and_pattern())
    @_SETTINGS
    def test_sce_ablation_invariant(self, gp):
        g, p = gp
        engine = CSCE(g)
        assert (
            engine.match(p, "edge_induced", count_only=True, use_sce=True).count
            == engine.match(p, "edge_induced", count_only=True, use_sce=False).count
        )

    @given(graph_and_pattern())
    @_SETTINGS
    def test_induced_pattern_has_at_least_one_induced_match(self, gp):
        g, p = gp
        # p was vertex-induced from g, so at least one embedding exists.
        assert CSCE(g).count(p, "vertex_induced") >= 1


# ---------------------------------------------------------------------------
# Extension invariants: restrictions, seeds, DSL
# ---------------------------------------------------------------------------
class TestExtensionProperties:
    @given(graphs(max_vertices=8, max_edges=14, max_labels=1, allow_directed=False))
    @_SETTINGS
    def test_symmetry_restrictions_partition_orbits(self, g):
        """Restricted count x |Aut(P)| == unrestricted count, for every
        unlabeled pattern sampled as an induced subgraph of g."""
        from repro.baselines.symmetry import symmetry_restrictions

        if g.num_vertices < 3:
            return
        p = g.induced_subgraph([0, 1, 2])
        restrictions, group_size = symmetry_restrictions(p)
        engine = CSCE(g)
        full = engine.match(p, "edge_induced").count
        restricted = engine.match(
            p, "edge_induced", restrictions=restrictions or None
        ).count
        assert restricted * group_size == full

    @given(graph_and_pattern())
    @_SETTINGS
    def test_seeded_union_covers_full_enumeration(self, gp):
        """Summing seeded runs over all first-vertex images reproduces the
        unseeded enumeration exactly."""
        g, p = gp
        engine = CSCE(g)
        full = engine.match(p, "edge_induced")
        keys = {tuple(sorted(m.items())) for m in full.embeddings}
        u = 0
        seeded_keys = set()
        for v in range(g.num_vertices):
            part = engine.match(p, "edge_induced", seed={u: v})
            for m in part.embeddings:
                assert m[u] == v
                seeded_keys.add(tuple(sorted(m.items())))
        assert seeded_keys == keys

    @given(graphs(max_vertices=6, max_edges=10, max_labels=2))
    @_SETTINGS
    def test_dsl_roundtrip(self, g):
        """Round trip holds up to the name binding (parsing renumbers
        vertices in first-appearance order)."""
        from repro.graph.dsl import format_pattern, parse_pattern

        rendered = format_pattern(g)
        parsed, bindings = parse_pattern(rendered)
        mapping = {v: bindings[f"v{v}"] for v in g.vertices()}
        assert sorted(mapping.values()) == list(parsed.vertices())
        for v in g.vertices():
            assert parsed.vertex_label(mapping[v]) == g.vertex_label(v)

        def canon(graph, translate):
            out = set()
            for e in graph.edges():
                src, dst = translate(e.src), translate(e.dst)
                if e.directed:
                    out.add((src, dst, e.label, True))
                else:
                    out.add((min(src, dst), max(src, dst), e.label, False))
            return out

        assert canon(g, lambda v: mapping[v]) == canon(parsed, lambda v: v)


# ---------------------------------------------------------------------------
# Multi-worker merge invariants
# ---------------------------------------------------------------------------
_COUNTER_KEYS = st.sampled_from(
    ["nodes", "backtracks", "ccsr.bytes_read", "memo_hits", "heartbeats"]
)
counter_snapshots = st.dictionaries(
    keys=_COUNTER_KEYS,
    values=st.integers(min_value=0, max_value=10**9),
    max_size=5,
)


class TestMergeProperties:
    @given(counter_snapshots, counter_snapshots, counter_snapshots)
    @_SETTINGS
    def test_merge_counters_associative(self, a, b, c):
        from repro.obs import merge_counters

        assert merge_counters(merge_counters(a, b), c) == merge_counters(
            a, merge_counters(b, c)
        )

    @given(counter_snapshots, counter_snapshots)
    @_SETTINGS
    def test_merge_counters_commutative(self, a, b):
        from repro.obs import merge_counters

        assert merge_counters(a, b) == merge_counters(b, a)

    @given(counter_snapshots)
    @_SETTINGS
    def test_merge_counters_identity(self, a):
        from repro.obs import merge_counters

        assert merge_counters(a, {}) == merge_counters(a) == {
            k: v for k, v in a.items()
        }

    @given(st.lists(counter_snapshots, min_size=1, max_size=6))
    @_SETTINGS
    def test_sharded_merge_equals_single_fold(self, parts):
        """Merging per-shard snapshots in any grouping equals the
        single-process fold of the same workload (exact integer sums)."""
        from repro.obs import merge_counters
        from repro.obs.counters import CounterRegistry

        single = CounterRegistry()
        for part in parts:
            single.merge(part)
        merged = merge_counters(*parts)
        assert merged == {
            k: v for k, v in single.snapshot().items() if k in merged
        }
        mid = len(parts) // 2
        regrouped = merge_counters(
            merge_counters(*parts[:mid]), merge_counters(*parts[mid:])
        )
        assert regrouped == merged

    @given(
        st.lists(
            st.integers(min_value=1, max_value=6), min_size=1, max_size=5
        ),
        st.data(),
    )
    @_SETTINGS
    def test_search_state_fraction_bounded_and_monotone(self, sizes, data):
        from repro.obs import search_state_fraction

        values = [list(range(size)) for size in sizes]
        index = [
            data.draw(st.integers(min_value=0, max_value=size))
            for size in sizes
        ]
        fraction = search_state_fraction(values, index)
        assert 0.0 <= fraction <= 1.0
        # Advancing the deepest cursor never decreases the estimate.
        if index[-1] < sizes[-1]:
            advanced = list(index)
            advanced[-1] += 1
            assert search_state_fraction(values, advanced) >= fraction
