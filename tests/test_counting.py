"""Unit tests for SCE-factorized counting."""

import pytest

from repro.core import CSCE
from repro.graph import Graph

from conftest import brute_count, make_random_graph


class TestFactorizationCorrectness:
    @pytest.mark.parametrize("variant", ["edge_induced", "vertex_induced", "homomorphic"])
    def test_counts_match_enumeration_randomized(self, variant):
        from repro.graph.sampling import sample_pattern

        for seed in range(6):
            g = make_random_graph(14, 28, num_labels=3, seed=seed)
            try:
                p = sample_pattern(g, 4, rng=seed)
            except Exception:
                continue
            engine = CSCE(g)
            counted = engine.match(p, variant, count_only=True).count
            enumerated = engine.match(p, variant).count
            assert counted == enumerated

    def test_star_pattern_factorizes(self):
        # Data: hub with 10 spokes; pattern: hub with 3 spokes of distinct
        # labels -> leaves are independent, counts multiply.
        g = Graph()
        labels = ["hub"] + ["x", "y", "z"] * 3
        g.add_vertices(labels)
        for i in range(1, 10):
            g.add_edge(0, i)
        p = Graph()
        p.add_vertices(["hub", "x", "y", "z"])
        for i in range(1, 4):
            p.add_edge(0, i)
        engine = CSCE(g)
        result = engine.match(p, "edge_induced", count_only=True)
        assert result.count == 27  # 3 choices per distinctly-labeled leaf
        assert result.stats["factorizations"] > 0

    def test_same_label_leaves_not_overcounted(self):
        # Leaves share a label: naive factorization would give 3 * 3 = 9,
        # the injective truth is 3 * 2 = 6.
        g = Graph()
        g.add_vertices(["hub", "x", "x", "x"])
        for i in range(1, 4):
            g.add_edge(0, i)
        p = Graph()
        p.add_vertices(["hub", "x", "x"])
        p.add_edge(0, 1)
        p.add_edge(0, 2)
        result = CSCE(g).match(p, "edge_induced", count_only=True)
        assert result.count == 6

    def test_same_label_leaves_factorize_under_homomorphism(self):
        g = Graph()
        g.add_vertices(["hub", "x", "x", "x"])
        for i in range(1, 4):
            g.add_edge(0, i)
        p = Graph()
        p.add_vertices(["hub", "x", "x"])
        p.add_edge(0, 1)
        p.add_edge(0, 2)
        result = CSCE(g).match(p, "homomorphic", count_only=True)
        assert result.count == 9  # repeats allowed: 3 * 3
        assert result.stats["factorizations"] > 0

    def test_group_memo_reuses_region_counts(self):
        # Two hubs each with private leaves; pattern = path hub-bridge-hub
        # with a leaf on each hub. The leaf regions repeat across hub
        # mappings, so the group memo must hit.
        g = Graph()
        g.add_vertices(["h", "h", "b", "l", "l", "l", "l"])
        g.add_edge(0, 2)
        g.add_edge(1, 2)
        g.add_edge(0, 3)
        g.add_edge(0, 4)
        g.add_edge(1, 5)
        g.add_edge(1, 6)
        p = Graph()
        p.add_vertices(["h", "b", "l"])
        p.add_edge(0, 1)
        p.add_edge(0, 2)
        result = CSCE(g).match(p, "edge_induced", count_only=True)
        assert result.count == 4  # two hubs x two leaves each
        assert result.count == CSCE(g).match(p, "edge_induced").count


class TestDisconnectedPatterns:
    def test_disconnected_pattern_counts(self):
        g = Graph()
        g.add_vertices(["a", "a", "b", "b"])
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        p = Graph()
        p.add_vertices(["a", "a", "b", "b"])
        p.add_edge(0, 1)
        p.add_edge(2, 3)
        engine = CSCE(g)
        for variant in ("edge_induced", "homomorphic"):
            counted = engine.match(p, variant, count_only=True).count
            assert counted == brute_count(g, p, variant)

    def test_two_component_pattern_factorizes(self):
        g = Graph()
        g.add_vertices(["a", "a", "b", "b", "b"])
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        g.add_edge(3, 4)
        p = Graph()
        p.add_vertices(["a", "a", "b", "b"])
        p.add_edge(0, 1)
        p.add_edge(2, 3)
        result = CSCE(g).match(p, "edge_induced", count_only=True)
        # a-a edge: 2 mappings; b-b edge: 4 mappings (two edges, both dirs).
        assert result.count == 8
        assert result.stats["factorizations"] > 0


class TestVertexInducedCounting:
    def test_negation_dependencies_respected(self):
        # Path data graph; pattern path of 3. Vertex-induced requires the
        # two ends to be non-adjacent, which couples them through negation.
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        p = Graph.from_edges(3, [(0, 1), (1, 2)])
        engine = CSCE(g)
        counted = engine.match(p, "vertex_induced", count_only=True).count
        assert counted == brute_count(g, p, "vertex_induced")
        assert counted == 8  # C4: each induced P3 once per center/direction

    def test_clique_pattern_equal_counts_both_induced_variants(self):
        g = make_random_graph(10, 25, seed=3)
        tri = Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        engine = CSCE(g)
        assert (
            engine.match(tri, "edge_induced", count_only=True).count
            == engine.match(tri, "vertex_induced", count_only=True).count
        )
