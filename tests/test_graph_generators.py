"""Unit tests for the random graph generators."""

import pytest

from repro.errors import GraphError
from repro.graph.algorithms import average_degree, is_connected
from repro.graph.generators import (
    assign_labels_zipf,
    erdos_renyi,
    grid_graph,
    planted_partition,
    power_law_graph,
    random_edge_labels,
)

import random


class TestZipfLabels:
    def test_zero_labels_gives_all_zero(self):
        assert assign_labels_zipf(5, 0, random.Random(0)) == [0] * 5

    def test_labels_in_range(self):
        labels = assign_labels_zipf(200, 7, random.Random(0))
        assert set(labels) <= set(range(7))

    def test_skew(self):
        labels = assign_labels_zipf(2000, 10, random.Random(0))
        counts = [labels.count(i) for i in range(10)]
        assert counts[0] > counts[9]  # Zipf head dominates the tail


class TestErdosRenyi:
    def test_exact_edge_count(self):
        g = erdos_renyi(30, 50, seed=1)
        assert g.num_vertices == 30
        assert g.num_edges == 50

    def test_deterministic(self):
        assert erdos_renyi(20, 30, seed=5) == erdos_renyi(20, 30, seed=5)

    def test_directed(self):
        g = erdos_renyi(10, 20, directed=True, seed=2)
        assert g.is_directed

    def test_too_many_edges_rejected(self):
        with pytest.raises(GraphError):
            erdos_renyi(3, 10)


class TestPowerLaw:
    def test_size(self):
        g = power_law_graph(100, 3, seed=0)
        assert g.num_vertices == 100
        assert g.num_edges >= 3 * 90  # attachment edges minus dedupe losses

    def test_heavy_tail(self):
        g = power_law_graph(300, 3, seed=0)
        degrees = sorted((g.degree(v) for v in g.vertices()), reverse=True)
        assert degrees[0] > 4 * (sum(degrees) / len(degrees))

    def test_labels(self):
        g = power_law_graph(100, 2, num_labels=5, seed=0)
        assert set(g.vertex_labels) <= set(range(5))

    def test_too_few_vertices(self):
        with pytest.raises(GraphError):
            power_law_graph(2, 3)

    def test_bad_edges_per_vertex(self):
        with pytest.raises(GraphError):
            power_law_graph(10, 0)


class TestGrid:
    def test_road_like_degree(self):
        g = grid_graph(30, 30, seed=0)
        assert 2.0 < average_degree(g) < 3.6  # RoadCA's regime

    def test_max_degree_small(self):
        g = grid_graph(20, 20, seed=1)
        assert max(g.degree(v) for v in g.vertices()) <= 8


class TestPlantedPartition:
    def test_shapes(self):
        g, membership = planted_partition(3, 10, 0.8, 0.05, seed=0)
        assert g.num_vertices == 30
        assert len(membership) == 30
        assert set(membership) == {0, 1, 2}

    def test_intra_denser_than_inter(self):
        g, membership = planted_partition(4, 15, 0.7, 0.02, seed=1)
        intra = inter = 0
        for e in g.edges():
            if membership[e.src] == membership[e.dst]:
                intra += 1
            else:
                inter += 1
        assert intra > inter

    def test_probability_validation(self):
        with pytest.raises(GraphError):
            planted_partition(2, 5, 0.1, 0.5)


class TestRandomEdgeLabels:
    def test_labels_applied(self):
        g = erdos_renyi(10, 15, seed=3)
        labeled = random_edge_labels(g, 3, seed=0)
        assert labeled.distinct_edge_labels() <= {0, 1, 2}
        assert labeled.num_edges == g.num_edges

    def test_bad_label_count(self):
        g = erdos_renyi(5, 4, seed=0)
        with pytest.raises(GraphError):
            random_edge_labels(g, 0)
