"""Unit tests for the dataset registry and stand-ins."""

import pytest

from repro.datasets import (
    DATASET_NAMES,
    dataset_table,
    email_eu,
    get_spec,
    load_dataset,
)
from repro.errors import ReproError
from repro.graph.algorithms import average_degree, is_connected


class TestRegistry:
    def test_all_nine_table4_datasets_present(self):
        assert set(DATASET_NAMES) == {
            "dip",
            "yeast",
            "human",
            "hprd",
            "roadca",
            "orkut",
            "patent",
            "subcategory",
            "livejournal",
        }

    def test_unknown_dataset(self):
        with pytest.raises(ReproError, match="unknown dataset"):
            load_dataset("friendster")

    def test_directedness_matches_table4(self):
        for name in DATASET_NAMES:
            spec = get_spec(name)
            graph = load_dataset(name, scale=0.1)
            assert graph.is_directed == spec.directed, name

    def test_label_counts_match_table4(self):
        expectations = {"dip": 0, "yeast": 71, "roadca": 0, "livejournal": 0}
        for name, expected in expectations.items():
            graph = load_dataset(name, scale=0.3)
            labels = graph.distinct_vertex_labels()
            if expected == 0:
                assert labels == {0}
            else:
                # Zipf sampling may miss rare labels at small scale.
                assert len(labels) <= expected
                assert len(labels) > expected // 3

    def test_scaling(self):
        small = load_dataset("dip", scale=0.1)
        large = load_dataset("dip", scale=0.5)
        assert large.num_vertices > small.num_vertices

    def test_determinism(self):
        assert load_dataset("yeast", scale=0.2) == load_dataset("yeast", scale=0.2)

    def test_roadca_density_shape(self):
        road = load_dataset("roadca", scale=0.5)
        assert 2.0 < average_degree(road) < 3.6

    def test_human_denser_than_hprd(self):
        human = load_dataset("human", scale=0.3)
        hprd = load_dataset("hprd", scale=0.3)
        assert average_degree(human) > average_degree(hprd)

    def test_patent_relabeling(self):
        g = load_dataset("patent", scale=0.1, num_labels=200)
        assert len(g.distinct_vertex_labels()) > 20


class TestDatasetTable:
    def test_table_has_paper_columns(self):
        rows = dataset_table(scale=0.1)
        assert len(rows) == 9
        for row in rows:
            assert {"Data Graph", "Vertex Count", "Label Count"} <= set(row)
            assert row["Vertex Count"] > 0


class TestEmailEU:
    def test_ground_truth_shape(self):
        graph, membership = email_eu()
        assert graph.num_vertices == len(membership)
        assert len(set(membership)) == 6

    def test_graph_connected(self):
        graph, _ = email_eu()
        assert is_connected(graph)

    def test_departments_are_dense(self):
        graph, membership = email_eu()
        intra = inter = 0
        for e in graph.edges():
            if membership[e.src] == membership[e.dst]:
                intra += 1
            else:
                inter += 1
        assert intra > inter
