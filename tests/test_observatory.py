"""Tests for the performance observatory: metrics, profiling, EXPLAIN,
and the idempotent logging setup (repro.obs.metrics / .profile / .explain
/ .logconfig)."""

import json
import logging
import tracemalloc

import pytest

from repro.cli import main
from repro.core.csce import CSCE
from repro.graph import Graph, save_graph
from repro.obs import (
    NULL_METRICS,
    NULL_PROFILE,
    Heartbeat,
    JsonlTimeSeriesExporter,
    MemoryTracer,
    MetricsPump,
    MetricsRegistry,
    Observation,
    Profiler,
    PrometheusTextfileExporter,
    SearchDepthProfile,
    build_explain,
    build_run_report,
    configure_logging,
    estimate_candidates,
    format_explain,
    validate_run_report,
)
from repro.obs.metrics import COUNTER, metric_name


def _triangle_fan(n=12):
    """A small graph with enough embeddings to drive counters."""
    edges = [(0, i) for i in range(1, n)]
    edges += [(i, i + 1) for i in range(1, n - 1)]
    return Graph.from_edges(n, edges)


def _path_pattern(k=3):
    return Graph.from_edges(k, [(i, i + 1) for i in range(k - 1)])


# ----------------------------------------------------------------------
class TestMetricName:
    def test_dotted_counter_gets_namespace_and_total(self):
        assert (
            metric_name("ccsr.bytes_read", COUNTER)
            == "repro_ccsr_bytes_read_total"
        )

    def test_idempotent_suffix_and_namespace(self):
        once = metric_name("repro_embeddings_total", COUNTER)
        assert once == "repro_embeddings_total"
        assert metric_name(once, COUNTER) == once

    def test_invalid_characters_become_underscores(self):
        assert metric_name("Read CSR/phase-1") == "repro_read_csr_phase_1"


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.gauge("depth") is registry.gauge("depth")
        assert len(registry) == 1

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.gauge("embeddings_total")  # name collides with the counter
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("embeddings")

    def test_counter_is_monotonic_under_set(self):
        registry = MetricsRegistry()
        counter = registry.counter("nodes")
        counter.set(100)
        counter.set(40)  # a lower sample must not regress the series
        assert counter.value == 100
        counter.set(150)
        assert counter.value == 150

    def test_histogram_observe_and_rejection(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(55.55)
        # Cumulative le-bucket semantics; 50.0 lands only in +Inf (count).
        assert hist.bucket_counts == [1, 2, 3]
        with pytest.raises(ValueError, match="non-histogram"):
            registry.gauge("depth").observe(1.0)

    def test_sample_counters_skips_non_finite(self):
        registry = MetricsRegistry()
        registry.sample_counters(
            {"ccsr.rows": 7, "bad": float("inf"), "worse": float("nan")}
        )
        flat = registry.flat()
        assert flat == {"repro_ccsr_rows_total": 7}

    def test_flat_expands_histograms(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(1.0,)).observe(0.5)
        flat = registry.flat()
        assert flat["repro_lat_sum"] == 0.5
        assert flat["repro_lat_count"] == 1

    def test_prometheus_exposition(self):
        registry = MetricsRegistry(labels={"engine": "CSCE"})
        registry.counter("embeddings", help="embeddings found").set(12)
        registry.histogram("lat", buckets=(1.0, 2.0)).observe(0.5)
        text = registry.to_prometheus()
        assert "# HELP repro_embeddings_total embeddings found" in text
        assert "# TYPE repro_embeddings_total counter" in text
        assert 'repro_embeddings_total{engine="CSCE"} 12' in text
        # Histogram buckets are cumulative and close with +Inf == count.
        assert 'repro_lat_bucket{engine="CSCE",le="1"} 1' in text
        assert 'repro_lat_bucket{engine="CSCE",le="2"} 1' in text
        assert 'repro_lat_bucket{engine="CSCE",le="+Inf"} 1' in text
        assert text.endswith("\n")

    def test_label_escaping(self):
        registry = MetricsRegistry(labels={"q": 'a"b\nc'})
        registry.gauge("x").set(1)
        text = registry.to_prometheus()
        assert r"a\"b\nc" in text


class TestExporters:
    def test_prometheus_textfile_atomic_overwrite(self, tmp_path):
        registry = MetricsRegistry()
        registry.gauge("x").set(1)
        exporter = PrometheusTextfileExporter(tmp_path / "metrics.prom")
        exporter.export(registry)
        registry.gauge("x").set(2)
        exporter.export(registry)
        assert exporter.exports == 2
        content = (tmp_path / "metrics.prom").read_text()
        assert "repro_x 2" in content and "repro_x 1" not in content
        # No torn temp file left behind.
        assert not (tmp_path / "metrics.prom.tmp").exists()

    def test_jsonl_appends_one_sample_per_line(self, tmp_path):
        registry = MetricsRegistry(labels={"engine": "CSCE"})
        registry.gauge("x").set(1)
        exporter = JsonlTimeSeriesExporter(tmp_path / "series.jsonl")
        exporter.export(registry, ts=10.0)
        exporter.export(registry, ts=11.0)
        lines = (tmp_path / "series.jsonl").read_text().splitlines()
        assert len(lines) == 2
        samples = [json.loads(line) for line in lines]
        assert [s["ts"] for s in samples] == [10.0, 11.0]
        assert samples[0]["labels"] == {"engine": "CSCE"}
        assert samples[0]["metrics"]["repro_x"] == 1


class TestMetricsPump:
    def test_finalize_exports_terminal_run_metrics(self, tmp_path):
        engine = CSCE(_triangle_fan())
        pump = MetricsPump(
            exporters=[PrometheusTextfileExporter(tmp_path / "m.prom")],
            labels={"engine": "CSCE"},
        )
        obs = Observation(metrics=pump)
        result = engine.match(_path_pattern(), "edge_induced", obs=obs)
        obs.finish(result)
        flat = pump.registry.flat()
        assert flat["repro_embeddings_total"] == result.count
        assert flat["repro_total_seconds"] == pytest.approx(
            result.total_seconds
        )
        assert flat["repro_timed_out"] == 0.0
        # The observation's run counters were folded in too.
        assert any(name.startswith("repro_ccsr_") for name in flat)
        assert pump.samples >= 1
        assert (tmp_path / "m.prom").read_text().startswith("#")

    def test_heartbeat_drives_live_samples(self, monkeypatch):
        monkeypatch.setattr("repro.engine.executor._TIME_CHECK_INTERVAL", 4)
        pump = MetricsPump()
        obs = Observation(
            trace=False,
            heartbeat=Heartbeat(interval=0.0, emit=lambda line: None),
            metrics=pump,
        )
        engine = CSCE(_triangle_fan())
        engine.match(_path_pattern(), "edge_induced", obs=obs)
        assert obs.heartbeat.beats > 0
        assert pump.samples >= obs.heartbeat.beats

    def test_null_pump_is_disabled(self):
        assert not NULL_METRICS.enabled
        NULL_METRICS.sample()
        NULL_METRICS.finalize()
        assert NULL_METRICS.samples == 0


# ----------------------------------------------------------------------
class TestSearchDepthProfile:
    def test_rows_aggregate_per_depth(self):
        profile = SearchDepthProfile()
        profile.visit(0, 10)
        profile.visit(0, 20)
        profile.visit(1, 4)
        profile.backtrack(1)
        profile.memo_hit(1)
        profile.memo_miss(1)
        rows = profile.rows(order=[7, 3])
        assert [row["depth"] for row in rows] == [0, 1]
        assert rows[0]["visits"] == 2
        assert rows[0]["mean_candidates"] == 15.0
        assert rows[0]["vertex"] == 7
        assert rows[1] == {
            "depth": 1,
            "visits": 1,
            "backtracks": 1,
            "memo_hits": 1,
            "memo_misses": 1,
            "candidates": 4,
            "mean_candidates": 4.0,
            "vertex": 3,
        }

    def test_empty_profile_has_no_rows(self):
        assert SearchDepthProfile().rows() == []


class TestProfiler:
    def test_hot_clusters_ranked_by_rows(self):
        profiler = Profiler(start_tracemalloc=False)
        profiler.record_cluster("a", rows=5, nbytes=10)
        profiler.record_cluster("b", rows=50, nbytes=1)
        profiler.record_cluster("a", rows=5, nbytes=10)  # aggregates
        hot = profiler.hot_clusters()
        assert [row["key"] for row in hot] == ["b", "a"]
        assert hot[1] == {"key": "a", "rows": 10, "bytes": 20, "reads": 2}
        assert profiler.hot_clusters(k=1) == hot[:1]

    def test_note_span_memory_keeps_max_peak_and_sums_net(self):
        profiler = Profiler(start_tracemalloc=False)
        profiler.note_span_memory("read", 2048, 1024)
        profiler.note_span_memory("read", 1024, 1024)
        entry = profiler.span_memory["read"]
        assert entry == {"peak_kb": 2.0, "net_kb": 2.0, "spans": 2}
        assert profiler.overall_peak_bytes == 2048

    def test_owns_and_releases_tracemalloc(self):
        already_tracing = tracemalloc.is_tracing()
        profiler = Profiler()
        assert tracemalloc.is_tracing()
        data = [list(range(1000)) for _ in range(50)]
        assert profiler.peak_mb > 0
        profiler.finish()
        assert profiler.overall_peak_bytes > 0
        if not already_tracing:
            assert not tracemalloc.is_tracing()
        del data


class TestMemoryTracer:
    def test_spans_carry_memory_attrs_and_peaks_nest(self):
        profiler = Profiler()
        tracer = MemoryTracer(profiler)
        try:
            with tracer.span("outer"):
                with tracer.span("inner"):
                    ballast = [bytearray(4096) for _ in range(200)]
                del ballast
        finally:
            profiler.finish()
        outer, inner = tracer.find("outer"), tracer.find("inner")
        assert inner.attrs["mem_peak_kb"] > 0
        # The global peak happened inside the child; the parent's window
        # must fold it in (tracemalloc's counter is process-global).
        assert outer.attrs["mem_peak_kb"] >= inner.attrs["mem_peak_kb"]
        assert profiler.span_memory["inner"]["spans"] == 1

    def test_null_profile_reports_nothing(self):
        assert NULL_PROFILE.as_dict() == {}
        assert NULL_PROFILE.hot_clusters() == []
        assert NULL_PROFILE.peak_mb == 0.0


class TestProfiledRun:
    def test_profile_block_in_run_report(self):
        graph = _triangle_fan()
        pattern = _path_pattern()
        engine = CSCE(graph)
        obs = Observation(profile=True)
        result = engine.match(pattern, "edge_induced", obs=obs)
        obs.finish(result)
        report = build_run_report(
            result, engine="CSCE", obs=obs, pattern=pattern
        )
        validate_run_report(report)
        profile = report["profile"]
        assert profile["peak_mb"] > 0
        # Every pattern-vertex depth was visited.
        depths = [row["depth"] for row in profile["search_depth"]]
        assert depths == list(range(pattern.num_vertices))
        assert all(row["visits"] > 0 for row in profile["search_depth"])
        # The CCSR read phase fed the hot-cluster table.
        assert profile["hot_clusters"]
        assert all(row["rows"] >= 0 for row in profile["hot_clusters"])
        # The MemoryTracer annotated the pipeline phases.
        assert {"read", "execute"} <= set(profile["memory_by_span"])

    def test_profiling_does_not_change_results(self):
        graph = _triangle_fan()
        pattern = _path_pattern(4)
        engine = CSCE(graph)
        plain = engine.match(pattern, "edge_induced", count_only=True)
        obs = Observation(profile=True)
        profiled = engine.match(
            pattern, "edge_induced", count_only=True, obs=obs
        )
        obs.finish(profiled)
        assert profiled.count == plain.count
        assert profiled.stats == plain.stats

    def test_counting_path_records_memoization(self):
        # A star whose leaves carry distinct labels factorizes (the wide
        # star of test_large_patterns): the SCE counting path must feed
        # the per-depth profile, like run() does.
        per_label, labels = 3, 3
        g = Graph()
        g.add_vertex("hub")
        for label in range(labels):
            for _ in range(per_label):
                v = g.add_vertex(f"leaf{label}")
                g.add_edge(0, v)
        p = Graph()
        p.add_vertex("hub")
        for label in range(labels):
            v = p.add_vertex(f"leaf{label}")
            p.add_edge(0, v)
        obs = Observation(profile=True)
        result = CSCE(g).match(p, "edge_induced", count_only=True, obs=obs)
        obs.finish(result)
        search = obs.profile.search
        assert result.stats["factorizations"] > 0
        assert sum(search.visits.values()) > 0
        # The per-depth memo counters mirror the unified stats exactly —
        # they are recorded at the same call sites.
        assert sum(search.memo_hits.values()) == result.stats["memo_hits"]
        assert sum(search.memo_misses.values()) == result.stats["memo_misses"]


# ----------------------------------------------------------------------
class TestExplain:
    def _plan(self, k=4):
        engine = CSCE(_triangle_fan())
        pattern = _path_pattern(k)
        return engine.build_plan(pattern, "edge_induced", obs=Observation())

    def test_build_explain_structure(self):
        plan = self._plan()
        info = build_explain(plan)
        assert sorted(info["order"]) == list(range(4))
        assert len(info["steps"]) == 4
        assert info["equivalence_pairs"] == sorted(
            plan.dag.independent_pairs()
        )
        assert info["dag"]["num_edges"] == len(info["dag"]["edges"])
        assert not info["has_actuals"]
        for step in info["steps"]:
            assert step["estimated_candidates"] >= 0
        # The planner ran under a live tracer, so rules were recorded.
        assert any("rationale" in step for step in info["steps"])

    def test_estimates_cover_every_position(self):
        plan = self._plan()
        estimates = estimate_candidates(plan)
        assert len(estimates) == plan.num_vertices
        # The first (unconstrained) step is costed by its static pool.
        first = plan.first_candidates[0]
        expected = 0.0 if first is None else float(len(first))
        assert estimates[0] == expected

    def test_actuals_joined_from_profiled_report(self):
        plan = self._plan()
        report = {
            "profile": {
                "search_depth": [
                    {
                        "depth": 0,
                        "visits": 9,
                        "mean_candidates": 2.5,
                        "backtracks": 1,
                    }
                ]
            }
        }
        info = build_explain(plan, report=report)
        assert info["has_actuals"]
        assert info["steps"][0]["actual_visits"] == 9
        assert info["steps"][0]["actual_mean_candidates"] == 2.5
        text = format_explain(info)
        assert "act.cand" in text

    def test_format_explain_renders_sections(self):
        info = build_explain(self._plan())
        text = format_explain(info)
        assert "EXPLAIN" in text
        assert "order (Phi*)" in text
        assert "dependency DAG H" in text
        assert "equivalence (no-path) pairs" in text
        assert "SCE occurrence" in text
        # Without actuals it points at the --profile workflow.
        assert "--profile" in text


# ----------------------------------------------------------------------
class TestLogconfigIdempotent:
    @pytest.fixture
    def repro_logger(self):
        root = logging.getLogger("repro")
        saved = (list(root.handlers), root.level, root.propagate)
        yield root
        root.handlers[:] = saved[0]
        root.setLevel(saved[1])
        root.propagate = saved[2]

    def test_repeated_configure_attaches_one_handler(self, repro_logger):
        configure_logging(level="INFO")
        first = [
            h
            for h in repro_logger.handlers
            if getattr(h, "_repro_managed", False)
        ]
        configure_logging(level="DEBUG")
        configure_logging(level="DEBUG", json_output=True)
        managed = [
            h
            for h in repro_logger.handlers
            if getattr(h, "_repro_managed", False)
        ]
        assert len(managed) == 1
        assert managed[0] is first[0]  # reused, not replaced

    def test_records_emitted_exactly_once(self, repro_logger, capsys):
        class Capture(logging.Handler):
            def __init__(self):
                super().__init__()
                self.records = []

            def emit(self, record):
                self.records.append(record)

        foreign = Capture()
        repro_logger.addHandler(foreign)
        configure_logging(level="INFO")
        configure_logging(level="INFO")  # the regression: double setup
        logging.getLogger("repro.test_observatory").warning("once-only")
        # The embedder's handler survived and saw the record once ...
        assert foreign in repro_logger.handlers
        assert len(foreign.records) == 1
        # ... and the managed stderr handler emitted it exactly once.
        assert capsys.readouterr().err.count("once-only") == 1

    def test_managed_handler_follows_current_stderr(self, repro_logger, capsys):
        # configure *before* capsys swaps sys.stderr: late binding means
        # records still land in the active stream.
        configure_logging(level="INFO")
        logging.getLogger("repro.test_observatory").warning("late-bound")
        assert "late-bound" in capsys.readouterr().err


# ----------------------------------------------------------------------
class TestObservatoryCLI:
    @pytest.fixture
    def graph_files(self, tmp_path):
        save_graph(_triangle_fan(), tmp_path / "d.graph")
        save_graph(_path_pattern(), tmp_path / "p.graph")
        return str(tmp_path / "d.graph"), str(tmp_path / "p.graph")

    def test_match_profile_json(self, graph_files, capsys):
        data, pattern = graph_files
        code = main(
            [
                "match",
                "--data",
                data,
                "--pattern",
                pattern,
                "--profile",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["profile"]["peak_mb"] > 0
        assert payload["profile"]["search_depth"]

    def test_match_exports_metrics(self, graph_files, tmp_path, capsys):
        data, pattern = graph_files
        prom = tmp_path / "metrics.prom"
        jsonl = tmp_path / "metrics.jsonl"
        code = main(
            [
                "match",
                "--data",
                data,
                "--pattern",
                pattern,
                "--metrics-prom",
                str(prom),
                "--metrics-jsonl",
                str(jsonl),
            ]
        )
        assert code == 0
        capsys.readouterr()
        text = prom.read_text()
        assert "# TYPE repro_" in text and "_total" in text
        sample = json.loads(jsonl.read_text().splitlines()[-1])
        assert sample["metrics"]["repro_embeddings_total"] >= 0

    def test_explain_renders(self, graph_files, capsys):
        data, pattern = graph_files
        code = main(["explain", "--data", data, "--pattern", pattern])
        assert code == 0
        out = capsys.readouterr().out
        assert "EXPLAIN" in out and "order (Phi*)" in out

    def test_explain_json_with_profiled_report(
        self, graph_files, tmp_path, capsys
    ):
        data, pattern = graph_files
        report_path = tmp_path / "run.json"
        assert (
            main(
                [
                    "match",
                    "--data",
                    data,
                    "--pattern",
                    pattern,
                    "--profile",
                    "--report",
                    str(report_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        code = main(
            [
                "explain",
                "--data",
                data,
                "--pattern",
                pattern,
                "--run-report",
                str(report_path),
                "--json",
            ]
        )
        assert code == 0
        info = json.loads(capsys.readouterr().out)
        assert info["has_actuals"]
        assert any("actual_visits" in step for step in info["steps"])

    def test_explain_requires_source(self, capsys):
        assert main(["explain"]) == 2
        assert "provide --data" in capsys.readouterr().err
