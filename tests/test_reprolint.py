"""Tests for the reprolint static-analysis suite (``tools/reprolint``).

Each pass is exercised two ways:

* *fixture mode* — the pass runs on a known-bad file under
  ``tools/reprolint/fixtures/`` and must flag every seeded violation (and
  nothing else on the fixture's clean lines);
* *live mode* — the pass runs on the real tree and must be clean, which
  is exactly what CI asserts.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
if str(REPO) not in sys.path:
    sys.path.insert(0, str(REPO))

from tools.reprolint import (  # noqa: E402
    REGISTRY,
    LintContext,
    load_passes,
    run_passes,
)
from tools.reprolint.__main__ import main as reprolint_main  # noqa: E402

FIXTURES = REPO / "tools" / "reprolint" / "fixtures"

load_passes()

ALL_PASSES = sorted(REGISTRY)


def run_fixture(pass_name: str, fixture: str):
    ctx = LintContext(root=REPO, explicit_paths=[FIXTURES / fixture])
    return run_passes(ctx, select=[pass_name])


# ---------------------------------------------------------------------------
# Framework
# ---------------------------------------------------------------------------
def test_every_pass_registered():
    assert set(ALL_PASSES) == {
        "api_all",
        "checkpoint_fields",
        "clock_discipline",
        "fork_safety",
        "inspector_commands",
        "layering",
        "no_recursion",
        "obs_keys",
        "stop_reasons",
    }


def test_unknown_pass_rejected():
    ctx = LintContext(root=REPO)
    with pytest.raises(KeyError):
        run_passes(ctx, select=["no_such_pass"])


def test_violation_render_format():
    violations = run_fixture("clock_discipline", "clock_discipline.py")
    assert violations
    line = violations[0].render()
    assert "[clock_discipline]" in line
    assert "clock_discipline.py" in line
    d = violations[0].as_dict()
    assert set(d) == {"pass", "path", "line", "message"}


# ---------------------------------------------------------------------------
# Per-pass fixtures: every seeded violation is flagged
# ---------------------------------------------------------------------------
def test_layering_fixture_flagged():
    violations = run_fixture("layering", "layering.py")
    assert violations, "layering fixture must be flagged"
    assert all(v.pass_name == "layering" for v in violations)
    # Both the plain and the lazy (function-body) forbidden import.
    assert len(violations) >= 2


def test_no_recursion_fixture_flagged():
    violations = run_fixture("no_recursion", "no_recursion.py")
    flagged = {v.message.split(" is ")[0] for v in violations}
    assert flagged == {"descend", "ping", "pong", "Walker.walk"}
    # The explicit-stack function must NOT be flagged.
    assert "iterative" not in flagged


def test_obs_keys_fixture_flagged():
    violations = run_fixture("obs_keys", "obs_keys.py")
    messages = " ".join(v.message for v in violations)
    assert "ccsr.bytes_red" in messages  # counter typo
    assert "reed_seconds" in messages  # metric typo
    assert "'degrad'" in messages  # recorder event typo
    # The fixture's clean literals (STAT_KEYS / KNOWN_COUNTERS /
    # KNOWN_METRICS / KNOWN_EVENTS members) are not flagged.
    assert "plan_cache.hits" not in messages
    assert "embeddings" not in messages
    assert "'degrade'" not in messages
    assert len(violations) == 3


def test_stop_reasons_fixture_flagged():
    violations = run_fixture("stop_reasons", "stop_reasons.py")
    flagged = {v.message.split("'")[1] for v in violations}
    assert flagged == {"time-limit", "memory", "emb_limit"}
    # The canonical member on the clean line is not flagged.
    assert "cancelled" not in flagged


def test_checkpoint_fields_fixture_flagged():
    violations = run_fixture("checkpoint_fields", "checkpoint_fields.py")
    messages = " ".join(v.message for v in violations)
    assert "progress" in messages  # dropped document key
    assert "extra" in messages  # added document key
    assert "node_visits" in messages  # non-STAT_KEYS counter


def test_clock_discipline_fixture_flagged():
    violations = run_fixture("clock_discipline", "clock_discipline.py")
    messages = " ".join(v.message for v in violations)
    assert "naked 'except:'" in messages
    assert "time.time()" in messages
    # Both the plain and the from-import alias wall-clock reads.
    assert sum("time.time()" in v.message for v in violations) == 2


def test_inspector_commands_fixture_flagged():
    violations = run_fixture("inspector_commands", "inspector_commands.py")
    messages = " ".join(v.message for v in violations)
    assert "'stauts'" in messages  # .request() typo
    assert "'shutdown'" in messages  # never-registered command
    assert "'progres'" in messages  # .handle() typo
    assert "'cancel-all'" in messages  # HANDLERS key not registered
    # The fixture's clean literals (KNOWN_COMMANDS members) are not
    # flagged — neither as call args nor as HANDLERS keys.
    assert "'status'" not in messages
    assert "'cancel'" not in messages
    assert "'progress'" not in messages
    assert len(violations) == 4


def test_fork_safety_fixture_flagged():
    violations = run_fixture("fork_safety", "fork_safety.py")
    flagged = {v.message.split("'")[1] for v in violations}
    assert flagged == {
        "REGISTRY", "ACTIVE_WORKERS", "SEEN", "PENDING", "BY_ID", "FIRST",
    }
    # Immutable constants, the allowlisted logger, and function-local
    # mutables are not flagged.
    for clean in ("STOP_ORDER", "KNOWN", "LIMIT", "logger", "local", "REST"):
        assert clean not in flagged


def test_fork_safety_covers_pool_modules():
    from tools.reprolint.passes.fork_safety import SCOPES

    assert "src/repro/engine/pool.py" in SCOPES
    assert "src/repro/engine/workunit.py" in SCOPES


def test_no_recursion_covers_pool_modules():
    from tools.reprolint.passes.no_recursion import SCOPES

    assert "src/repro/engine/pool.py" in SCOPES
    assert "src/repro/engine/workunit.py" in SCOPES


def test_clock_discipline_covers_pool_module():
    # clock_discipline scopes by directory (all of src/repro, with the
    # wall-clock rule on src/repro/engine); the pool module must be in
    # the engine scan set.
    from tools.reprolint.passes.clock_discipline import ENGINE_PREFIX

    ctx = LintContext(root=REPO)
    scanned = {ctx.rel(p) for p in ctx.files("src/repro")}
    assert "src/repro/engine/pool.py" in scanned
    pool_rel = "src/repro/engine/pool.py"
    assert pool_rel.startswith("/".join(ENGINE_PREFIX))


def test_api_all_fixture_flagged():
    violations = run_fixture("api_all", "api_all.py")
    messages = " ".join(v.message for v in violations)
    assert "removed_function" in messages  # listed but never bound
    assert "lists 'parse' twice" in messages  # duplicate entry
    assert "string literals" in messages  # the 42 entry


# ---------------------------------------------------------------------------
# Live tree: the repository itself is clean
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("pass_name", ALL_PASSES)
def test_live_tree_clean(pass_name):
    ctx = LintContext(root=REPO)
    violations = run_passes(ctx, select=[pass_name])
    assert violations == [], "\n".join(v.render() for v in violations)


# ---------------------------------------------------------------------------
# CLI exit codes
# ---------------------------------------------------------------------------
def test_cli_exit_zero_on_clean_tree():
    assert reprolint_main([]) == 0


def test_cli_exit_one_on_bad_fixture(capsys):
    code = reprolint_main(
        ["--select", "api_all", str(FIXTURES / "api_all.py")]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "[api_all]" in out


def test_cli_exit_two_on_missing_path(capsys):
    assert reprolint_main(["/no/such/file.py"]) == 2


def test_cli_json_output(capsys):
    import json

    code = reprolint_main(
        ["--json", "--select", "stop_reasons",
         str(FIXTURES / "stop_reasons.py")]
    )
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["violations"]
    assert all(v["pass"] == "stop_reasons" for v in payload["violations"])


def test_check_layering_shim():
    result = subprocess.run(
        [sys.executable, str(REPO / "tools" / "check_layering.py")],
        capture_output=True,
        text=True,
        cwd=REPO,
    )
    assert result.returncode == 0, result.stdout + result.stderr
