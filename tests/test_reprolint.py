"""Tests for the reprolint static-analysis suite (``tools/reprolint``).

Each pass is exercised two ways:

* *fixture mode* — the pass runs on a known-bad file under
  ``tools/reprolint/fixtures/`` and must flag every seeded violation (and
  nothing else on the fixture's clean lines);
* *live mode* — the pass runs on the real tree and must be clean, which
  is exactly what CI asserts.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

REPO = Path(__file__).resolve().parent.parent
if str(REPO) not in sys.path:
    sys.path.insert(0, str(REPO))

from tools.reprolint import (  # noqa: E402
    REGISTRY,
    LintContext,
    load_passes,
    run_passes,
)
from tools.reprolint.__main__ import main as reprolint_main  # noqa: E402

FIXTURES = REPO / "tools" / "reprolint" / "fixtures"

load_passes()

ALL_PASSES = sorted(REGISTRY)


def run_fixture(pass_name: str, fixture: str):
    ctx = LintContext(root=REPO, explicit_paths=[FIXTURES / fixture])
    return run_passes(ctx, select=[pass_name])


# ---------------------------------------------------------------------------
# Framework
# ---------------------------------------------------------------------------
def test_every_pass_registered():
    assert set(ALL_PASSES) == {
        "api_all",
        "checkpoint_fields",
        "clock_discipline",
        "exception_flow",
        "fork_safety",
        "inspector_commands",
        "layering",
        "message_protocol",
        "no_recursion",
        "obs_keys",
        "signal_safety",
        "stop_reasons",
        "wire_schema",
    }


def test_unknown_pass_rejected():
    ctx = LintContext(root=REPO)
    with pytest.raises(KeyError):
        run_passes(ctx, select=["no_such_pass"])


def test_violation_render_format():
    violations = run_fixture("clock_discipline", "clock_discipline.py")
    assert violations
    line = violations[0].render()
    assert "[clock_discipline]" in line
    assert "clock_discipline.py" in line
    d = violations[0].as_dict()
    assert set(d) == {"pass", "path", "line", "message"}


# ---------------------------------------------------------------------------
# Per-pass fixtures: every seeded violation is flagged
# ---------------------------------------------------------------------------
def test_layering_fixture_flagged():
    violations = run_fixture("layering", "layering.py")
    assert violations, "layering fixture must be flagged"
    assert all(v.pass_name == "layering" for v in violations)
    # Both the plain and the lazy (function-body) forbidden import.
    assert len(violations) >= 2


def test_no_recursion_fixture_flagged():
    violations = run_fixture("no_recursion", "no_recursion.py")
    flagged = {v.message.split(" is ")[0] for v in violations}
    assert flagged == {"descend", "ping", "pong", "Walker.walk"}
    # The explicit-stack function must NOT be flagged.
    assert "iterative" not in flagged


def test_obs_keys_fixture_flagged():
    violations = run_fixture("obs_keys", "obs_keys.py")
    messages = " ".join(v.message for v in violations)
    assert "ccsr.bytes_red" in messages  # counter typo
    assert "reed_seconds" in messages  # metric typo
    assert "'degrad'" in messages  # recorder event typo
    # The fixture's clean literals (STAT_KEYS / KNOWN_COUNTERS /
    # KNOWN_METRICS / KNOWN_EVENTS members) are not flagged.
    assert "plan_cache.hits" not in messages
    assert "embeddings" not in messages
    assert "'degrade'" not in messages
    assert len(violations) == 3


def test_stop_reasons_fixture_flagged():
    violations = run_fixture("stop_reasons", "stop_reasons.py")
    flagged = {v.message.split("'")[1] for v in violations}
    assert flagged == {"time-limit", "memory", "emb_limit"}
    # The canonical member on the clean line is not flagged.
    assert "cancelled" not in flagged


def test_checkpoint_fields_fixture_flagged():
    violations = run_fixture("checkpoint_fields", "checkpoint_fields.py")
    messages = " ".join(v.message for v in violations)
    assert "progress" in messages  # dropped document key
    assert "extra" in messages  # added document key
    assert "node_visits" in messages  # non-STAT_KEYS counter


def test_clock_discipline_fixture_flagged():
    violations = run_fixture("clock_discipline", "clock_discipline.py")
    messages = " ".join(v.message for v in violations)
    assert "naked 'except:'" in messages
    assert "time.time()" in messages
    # Both the plain and the from-import alias wall-clock reads.
    assert sum("time.time()" in v.message for v in violations) == 2


def test_inspector_commands_fixture_flagged():
    violations = run_fixture("inspector_commands", "inspector_commands.py")
    messages = " ".join(v.message for v in violations)
    assert "'stauts'" in messages  # .request() typo
    assert "'shutdown'" in messages  # never-registered command
    assert "'progres'" in messages  # .handle() typo
    assert "'cancel-all'" in messages  # HANDLERS key not registered
    # The fixture's clean literals (KNOWN_COMMANDS members) are not
    # flagged — neither as call args nor as HANDLERS keys.
    assert "'status'" not in messages
    assert "'cancel'" not in messages
    assert "'progress'" not in messages
    assert len(violations) == 4


def test_fork_safety_fixture_flagged():
    violations = run_fixture("fork_safety", "fork_safety.py")
    flagged = {v.message.split("'")[1] for v in violations}
    assert flagged == {
        "REGISTRY", "ACTIVE_WORKERS", "SEEN", "PENDING", "BY_ID", "FIRST",
    }
    # Immutable constants, the allowlisted logger, and function-local
    # mutables are not flagged.
    for clean in ("STOP_ORDER", "KNOWN", "LIMIT", "logger", "local", "REST"):
        assert clean not in flagged


def test_fork_safety_covers_pool_modules():
    from tools.reprolint.passes.fork_safety import SCOPES

    assert "src/repro/engine/pool.py" in SCOPES
    assert "src/repro/engine/workunit.py" in SCOPES


def test_no_recursion_covers_pool_modules():
    from tools.reprolint.passes.no_recursion import SCOPES

    assert "src/repro/engine/pool.py" in SCOPES
    assert "src/repro/engine/workunit.py" in SCOPES


def test_clock_discipline_covers_pool_module():
    # clock_discipline scopes by directory (all of src/repro, with the
    # wall-clock rule on src/repro/engine); the pool module must be in
    # the engine scan set.
    from tools.reprolint.passes.clock_discipline import ENGINE_PREFIX

    ctx = LintContext(root=REPO)
    scanned = {ctx.rel(p) for p in ctx.files("src/repro")}
    assert "src/repro/engine/pool.py" in scanned
    pool_rel = "src/repro/engine/pool.py"
    assert pool_rel.startswith("/".join(ENGINE_PREFIX))


def test_api_all_fixture_flagged():
    violations = run_fixture("api_all", "api_all.py")
    messages = " ".join(v.message for v in violations)
    assert "removed_function" in messages  # listed but never bound
    assert "lists 'parse' twice" in messages  # duplicate entry
    assert "string literals" in messages  # the 42 entry


def test_wire_schema_fixture_flagged():
    violations = run_fixture("wire_schema", "wire_schema.py")
    messages = " ".join(v.message for v in violations)
    # Encoder writes a key the manifest does not declare.
    assert "'trailer'" in messages
    # Encoder that never stamps format/version.
    assert "encode_unstamped" in messages
    # Manifest key no listed encoder writes.
    assert "'ghost'" in messages
    # Decoder reads a key outside the manifest.
    assert "'checksum'" in messages
    # The agreeing key is never flagged.
    assert "'body'" not in messages
    assert len(violations) == 4


def test_message_protocol_fixture_flagged():
    violations = run_fixture("message_protocol", "message_protocol.py")
    messages = " ".join(v.message for v in violations)
    assert "'progress'" in messages  # unregistered send
    assert "'retired'" in messages  # dead dispatcher branch
    assert "'lost'" in messages  # registered but never handled
    # Kinds that are both registered and handled stay clean.
    assert "'ready'" not in messages
    assert "'done'" not in messages
    assert len(violations) == 3


def test_exception_flow_fixture_flagged():
    violations = run_fixture("exception_flow", "exception_flow.py")
    messages = " ".join(v.message for v in violations)
    # TimeLimitExceeded raised in tick() escapes through search() to the
    # root run_query() with no mapping handler anywhere on the path.
    assert "TimeLimitExceeded" in messages
    assert "run_query" in messages
    # The handler that catches EmbeddingLimitExceeded and just logs.
    assert "EmbeddingLimitExceeded" in messages
    assert "swallow" in messages
    assert len(violations) == 2
    # The escape is reported at the raise site.
    lines = {v.line for v in violations}
    assert 19 in lines


def test_signal_safety_fixture_flagged():
    violations = run_fixture("signal_safety", "signal_safety.py")
    messages = " ".join(v.message for v in violations)
    assert "context manager" in messages  # `with lock:` in the handler
    assert ".flush()" in messages  # disallowed method call
    assert "file=sys.stderr" in messages  # print without stderr
    assert "open()" in messages  # arbitrary call
    assert len(violations) == 4


# ---------------------------------------------------------------------------
# Live tree: the repository itself is clean
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("pass_name", ALL_PASSES)
def test_live_tree_clean(pass_name):
    ctx = LintContext(root=REPO)
    violations = run_passes(ctx, select=[pass_name])
    assert violations == [], "\n".join(v.render() for v in violations)


# ---------------------------------------------------------------------------
# CLI exit codes
# ---------------------------------------------------------------------------
def test_cli_exit_zero_on_clean_tree():
    assert reprolint_main([]) == 0


def test_cli_exit_one_on_bad_fixture(capsys):
    code = reprolint_main(
        ["--select", "api_all", str(FIXTURES / "api_all.py")]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "[api_all]" in out


def test_cli_exit_two_on_missing_path(capsys):
    assert reprolint_main(["/no/such/file.py"]) == 2


def test_cli_json_output(capsys):
    code = reprolint_main(
        ["--json", "--select", "stop_reasons",
         str(FIXTURES / "stop_reasons.py")]
    )
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["violations"]
    assert all(v["pass"] == "stop_reasons" for v in payload["violations"])


# ---------------------------------------------------------------------------
# Seeded drift demos: mutate the *real* wire modules and watch the
# semantic passes name the exact file, line, and manifest
# ---------------------------------------------------------------------------
def run_on_file(pass_name: str, path: Path):
    ctx = LintContext(root=REPO, explicit_paths=[path])
    return run_passes(ctx, select=[pass_name])


def test_wire_schema_catches_dropped_checkpoint_key(tmp_path):
    """Deleting one encoder-written key from the live checkpoint module
    (without bumping CHECKPOINT_VERSION) must be flagged on *both*
    manifests that declare it, at the manifest lines."""
    source = (REPO / "src" / "repro" / "engine" / "checkpoint.py").read_text()
    dropped = '        "pattern": {"text": text, "digest": digest},\n'
    assert dropped in source, "drift-demo anchor line moved"
    mutated = tmp_path / "checkpoint_drift.py"
    mutated.write_text(source.replace(dropped, "", 1))

    violations = run_on_file("wire_schema", mutated)
    assert len(violations) == 2  # "checkpoint" and "quarantine-residue"
    messages = " ".join(v.message for v in violations)
    assert "'pattern'" in messages
    assert "manifest 'checkpoint'" in messages
    assert "manifest 'quarantine-residue'" in messages
    assert "version bump" in messages
    # Each violation is anchored at its manifest's declaration line.
    for v in violations:
        assert v.path == str(mutated)
        assert v.line > 0


def test_message_protocol_catches_unregistered_send(tmp_path):
    """Appending a send site with an unregistered kind to the live pool
    module must be flagged at the exact line of the new put() call."""
    source = (REPO / "src" / "repro" / "engine" / "pool.py").read_text()
    addition = '\n\ndef _vanish(q):\n    q.put(("vanish", 1))\n'
    mutated = tmp_path / "pool_drift.py"
    mutated.write_text(source + addition)

    violations = run_on_file("message_protocol", mutated)
    assert len(violations) == 1
    v = violations[0]
    assert "'vanish'" in v.message
    assert "MESSAGE_KINDS" in v.message
    # The flagged line is the put() call — the last line of the file.
    assert v.line == len(mutated.read_text().splitlines())


# ---------------------------------------------------------------------------
# Hypothesis: *any* single-key drift in a clean fixture is caught
# ---------------------------------------------------------------------------
CLEAN_WIRE = (FIXTURES / "clean_wire.py").read_text()
CLEAN_PROTOCOL = (FIXTURES / "clean_protocol.py").read_text()


@settings(max_examples=20, derandomize=True, deadline=None)
@given(key=st.sampled_from(["head", "body", "tail"]))
def test_any_dropped_encoder_key_is_flagged(tmp_path_factory, key):
    """Property: delete any one encoder-written key from the clean wire
    fixture and wire_schema must flag exactly that key's manifest drift."""
    line = f'        "{key}": {key},\n'
    assert line in CLEAN_WIRE
    mutated = tmp_path_factory.mktemp("drift") / "clean_wire_mut.py"
    mutated.write_text(CLEAN_WIRE.replace(line, "", 1))

    violations = run_on_file("wire_schema", mutated)
    assert len(violations) == 1
    assert f"'{key}'" in violations[0].message
    assert "manifest 'clean-doc'" in violations[0].message


@settings(max_examples=20, derandomize=True, deadline=None)
@given(kind=st.from_regex(r"[a-z]{3,10}", fullmatch=True))
def test_any_unregistered_kind_is_flagged(tmp_path_factory, kind):
    """Property: append a send with any kind outside MESSAGE_KINDS to
    the clean protocol fixture and message_protocol must flag it."""
    registered = ("ready", "beat", "done")
    addition = f'\n\ndef stray(results):\n    results.put(("{kind}", 1))\n'
    mutated = tmp_path_factory.mktemp("drift") / "clean_protocol_mut.py"
    mutated.write_text(CLEAN_PROTOCOL + addition)

    violations = run_on_file("message_protocol", mutated)
    if kind in registered:
        assert violations == []
    else:
        assert len(violations) == 1
        assert f"'{kind}'" in violations[0].message


# ---------------------------------------------------------------------------
# SARIF output
# ---------------------------------------------------------------------------
def test_sarif_output_structure(capsys):
    code = reprolint_main(
        ["--sarif", "--select", "wire_schema",
         str(FIXTURES / "wire_schema.py")]
    )
    assert code == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "reprolint"
    # One rule per registered pass, regardless of selection.
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert rule_ids == set(ALL_PASSES)
    results = run["results"]
    assert len(results) == 4
    for result in results:
        assert result["ruleId"] == "wire_schema"
        assert result["level"] == "error"
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"].endswith("wire_schema.py")
        assert loc["region"]["startLine"] > 0


def test_sarif_clean_tree_empty_results(capsys):
    assert reprolint_main(["--sarif"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["runs"][0]["results"] == []


# ---------------------------------------------------------------------------
# --diff: wire-manifest version-bump discipline against a git base
# ---------------------------------------------------------------------------
def test_diff_against_head_is_clean(capsys):
    # HEAD vs HEAD: no manifest drift by construction.
    assert reprolint_main(["--diff", "HEAD"]) == 0


def test_diff_rejects_bad_revision(capsys):
    assert reprolint_main(["--diff", "no-such-ref-xyz"]) == 2
    assert "not a resolvable" in capsys.readouterr().err


def test_diff_rejects_explicit_paths(capsys):
    code = reprolint_main(
        ["--diff", "HEAD", str(FIXTURES / "wire_schema.py")]
    )
    assert code == 2


def test_diff_flags_unbumped_keyset_change():
    """Unit-level: same version, changed key set -> violation; bumped
    version -> clean; removed manifest -> violation."""
    import ast

    from tools.reprolint.passes import wire_schema

    old_src = CLEAN_WIRE
    new_same_version = CLEAN_WIRE.replace(
        '"keys": ("format", "version", "head", "body", "tail"),',
        '"keys": ("format", "version", "head", "body"),',
    )
    new_bumped = new_same_version.replace(
        "DOC_VERSION = 1", "DOC_VERSION = 2"
    )
    ctx = LintContext(root=REPO, explicit_paths=[FIXTURES / "clean_wire.py"])
    path = FIXTURES / "clean_wire.py"

    drift = wire_schema.diff_violations(
        ctx, path, ast.parse(old_src), ast.parse(new_same_version)
    )
    assert len(drift) == 1
    assert "'tail'" in drift[0].message
    assert "version" in drift[0].message

    bumped = wire_schema.diff_violations(
        ctx, path, ast.parse(old_src), ast.parse(new_bumped)
    )
    assert bumped == []

    removed = wire_schema.diff_violations(
        ctx, path, ast.parse(old_src), ast.parse("X = 1\n")
    )
    assert len(removed) == 1
    assert "clean-doc" in removed[0].message
