"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.graph import Graph, save_graph


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_match_flags(self):
        args = build_parser().parse_args(
            ["match", "--dataset", "dip", "--pattern-size", "6"]
        )
        assert args.dataset == "dip"
        assert args.pattern_size == 6


class TestCommands:
    def test_stats(self, capsys):
        assert main(["stats", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Table IV" in out
        assert "roadca" in out

    def test_capabilities(self, capsys):
        assert main(["capabilities"]) == 0
        out = capsys.readouterr().out
        assert "CSCE" in out and "VEQ" in out

    def test_match_dataset(self, capsys):
        code = main(
            [
                "match",
                "--dataset",
                "yeast",
                "--scale",
                "0.2",
                "--pattern-size",
                "4",
                "--seed",
                "1",
                "--time-limit",
                "30",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "embeddings" in out

    def test_match_files(self, tmp_path, capsys):
        data = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        pattern = Graph.from_edges(3, [(0, 1), (1, 2)])
        data_path, pattern_path = tmp_path / "d.graph", tmp_path / "p.graph"
        save_graph(data, data_path)
        save_graph(pattern, pattern_path)
        code = main(
            ["match", "--data", str(data_path), "--pattern", str(pattern_path)]
        )
        assert code == 0
        assert "embeddings  : 8" in capsys.readouterr().out

    def test_match_enumerate_shows_embeddings(self, tmp_path, capsys):
        data = Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        pattern = Graph.from_edges(2, [(0, 1)])
        data_path, pattern_path = tmp_path / "d.graph", tmp_path / "p.graph"
        save_graph(data, data_path)
        save_graph(pattern, pattern_path)
        code = main(
            [
                "match",
                "--data",
                str(data_path),
                "--pattern",
                str(pattern_path),
                "--enumerate",
                "--show",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "#0:" in out
        assert "more" in out  # 6 embeddings, 2 shown

    def test_match_requires_source(self, capsys):
        assert main(["match"]) == 2
        assert "provide --data" in capsys.readouterr().err

    def test_match_baseline_engine(self, capsys):
        code = main(
            [
                "match",
                "--dataset",
                "yeast",
                "--scale",
                "0.2",
                "--pattern-size",
                "4",
                "--engine",
                "VEQ",
                "--time-limit",
                "30",
            ]
        )
        assert code == 0

    def test_plan_command(self, capsys):
        code = main(
            [
                "plan",
                "--dataset",
                "patent",
                "--scale",
                "0.1",
                "--pattern-size",
                "6",
                "--planner",
                "csce",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "order (Phi*)" in out and "SCE" in out

    def test_bench_command(self, capsys):
        code = main(
            [
                "bench",
                "--dataset",
                "yeast",
                "--scale",
                "0.15",
                "--sizes",
                "4",
                "--patterns",
                "1",
                "--engines",
                "CSCE",
                "--time-limit",
                "10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "averages" in out
        assert "CSCE" in out


class TestRobustnessFlags:
    """The robustness surface: --memory-limit/--checkpoint/--resume,
    lenient parsing, and the report --validate exit-code contract."""

    def _graph_file(self, tmp_path):
        from conftest import make_random_graph

        path = tmp_path / "data.graph"
        save_graph(make_random_graph(30, 80, num_labels=1, seed=2), path)
        return str(path)

    def test_parser_accepts_robustness_flags(self):
        args = build_parser().parse_args(
            ["match", "--dataset", "dip", "--memory-limit", "256",
             "--checkpoint", "ck.json", "--lenient"]
        )
        assert args.memory_limit == 256.0
        assert args.checkpoint == "ck.json"
        assert args.lenient

    def test_robustness_flags_require_csce(self, tmp_path, capsys):
        data = self._graph_file(tmp_path)
        code = main(["match", "--data", data, "--engine", "VEQ",
                     "--memory-limit", "64"])
        assert code == 2
        assert "CSCE" in capsys.readouterr().err

    def test_checkpoint_then_resume(self, tmp_path, capsys):
        data = self._graph_file(tmp_path)
        ck = str(tmp_path / "ck.json")
        code = main(["match", "--data", data, "--pattern-size", "4",
                     "--limit", "3", "--checkpoint", ck])
        out = capsys.readouterr().out
        assert code == 0
        assert "stopped: embedding_limit" in out
        assert "(written)" in out
        code = main(["match", "--data", data, "--resume", ck])
        out = capsys.readouterr().out
        assert code == 0
        assert "stopped" not in out

    def test_resume_refuses_mutated_data(self, tmp_path, capsys):
        from conftest import make_random_graph

        data = self._graph_file(tmp_path)
        ck = str(tmp_path / "ck.json")
        assert main(["match", "--data", data, "--pattern-size", "4",
                     "--limit", "3", "--checkpoint", ck]) == 0
        capsys.readouterr()
        mutated = tmp_path / "mutated.graph"
        save_graph(make_random_graph(31, 80, num_labels=1, seed=2), mutated)
        code = main(["match", "--data", str(mutated), "--resume", ck])
        assert code == 2
        assert "store" in capsys.readouterr().err

    def test_lenient_data_file(self, tmp_path, capsys):
        path = tmp_path / "dirty.graph"
        path.write_text("t 3 2\nv 0 0\nv 1 0\nv 2 0\ne 0 1\nbroken\ne 1 2\n")
        with pytest.raises(Exception):
            main(["match", "--data", str(path), "--pattern-size", "3"])
        capsys.readouterr()
        code = main(["match", "--data", str(path), "--pattern-size", "3",
                     "--lenient"])
        captured = capsys.readouterr()
        assert code == 0
        assert "skipped 1 malformed" in captured.err

    def test_validate_flags_robustness_fields_exit_2(self, tmp_path, capsys):
        import json

        data = self._graph_file(tmp_path)
        report_path = str(tmp_path / "report.json")
        assert main(["match", "--data", data, "--pattern-size", "4",
                     "--trace", "--report", report_path]) == 0
        capsys.readouterr()
        assert main(["report", report_path, "--validate"]) == 0
        capsys.readouterr()
        doc = json.loads(open(report_path).read())
        doc["stop_reason"] = "cosmic_rays"
        open(report_path, "w").write(json.dumps(doc))
        assert main(["report", report_path, "--validate"]) == 2
        assert "cosmic_rays" in capsys.readouterr().err
        # A structural (schema) problem stays exit 1.
        del doc["stop_reason"], doc["count"]
        open(report_path, "w").write(json.dumps(doc))
        capsys.readouterr()
        assert main(["report", report_path, "--validate"]) == 1
