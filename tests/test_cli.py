"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.graph import Graph, save_graph


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_match_flags(self):
        args = build_parser().parse_args(
            ["match", "--dataset", "dip", "--pattern-size", "6"]
        )
        assert args.dataset == "dip"
        assert args.pattern_size == 6


class TestCommands:
    def test_stats(self, capsys):
        assert main(["stats", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Table IV" in out
        assert "roadca" in out

    def test_capabilities(self, capsys):
        assert main(["capabilities"]) == 0
        out = capsys.readouterr().out
        assert "CSCE" in out and "VEQ" in out

    def test_match_dataset(self, capsys):
        code = main(
            [
                "match",
                "--dataset",
                "yeast",
                "--scale",
                "0.2",
                "--pattern-size",
                "4",
                "--seed",
                "1",
                "--time-limit",
                "30",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "embeddings" in out

    def test_match_files(self, tmp_path, capsys):
        data = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        pattern = Graph.from_edges(3, [(0, 1), (1, 2)])
        data_path, pattern_path = tmp_path / "d.graph", tmp_path / "p.graph"
        save_graph(data, data_path)
        save_graph(pattern, pattern_path)
        code = main(
            ["match", "--data", str(data_path), "--pattern", str(pattern_path)]
        )
        assert code == 0
        assert "embeddings  : 8" in capsys.readouterr().out

    def test_match_enumerate_shows_embeddings(self, tmp_path, capsys):
        data = Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        pattern = Graph.from_edges(2, [(0, 1)])
        data_path, pattern_path = tmp_path / "d.graph", tmp_path / "p.graph"
        save_graph(data, data_path)
        save_graph(pattern, pattern_path)
        code = main(
            [
                "match",
                "--data",
                str(data_path),
                "--pattern",
                str(pattern_path),
                "--enumerate",
                "--show",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "#0:" in out
        assert "more" in out  # 6 embeddings, 2 shown

    def test_match_requires_source(self, capsys):
        assert main(["match"]) == 2
        assert "provide --data" in capsys.readouterr().err

    def test_match_baseline_engine(self, capsys):
        code = main(
            [
                "match",
                "--dataset",
                "yeast",
                "--scale",
                "0.2",
                "--pattern-size",
                "4",
                "--engine",
                "VEQ",
                "--time-limit",
                "30",
            ]
        )
        assert code == 0

    def test_plan_command(self, capsys):
        code = main(
            [
                "plan",
                "--dataset",
                "patent",
                "--scale",
                "0.1",
                "--pattern-size",
                "6",
                "--planner",
                "csce",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "order (Phi*)" in out and "SCE" in out

    def test_bench_command(self, capsys):
        code = main(
            [
                "bench",
                "--dataset",
                "yeast",
                "--scale",
                "0.15",
                "--sizes",
                "4",
                "--patterns",
                "1",
                "--engines",
                "CSCE",
                "--time-limit",
                "10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "averages" in out
        assert "CSCE" in out
