"""Robustness and edge-case tests across modules."""

import pytest

from repro.core import CSCE, Variant
from repro.errors import TimeLimitExceeded
from repro.graph import Graph
from repro.graph.patterns import by_name, path

from conftest import brute_count, make_random_graph


class TestMixedEdgeGraphs:
    """Graphs mixing directed and undirected edges between the same pair."""

    def _mixed_graph(self):
        g = Graph()
        g.add_vertices([0, 0, 0])
        g.add_edge(0, 1)                      # undirected
        g.add_edge(0, 1, label="x", directed=True)  # parallel directed
        g.add_edge(1, 2, directed=True)
        return g

    @pytest.mark.parametrize(
        "variant", ["edge_induced", "vertex_induced", "homomorphic"]
    )
    def test_counts_match_brute_force(self, variant):
        g = self._mixed_graph()
        p = Graph()
        p.add_vertices([0, 0])
        p.add_edge(0, 1, directed=True)
        assert CSCE(g).count(p, variant) == brute_count(g, p, variant)

    def test_parallel_edges_in_pattern(self):
        g = self._mixed_graph()
        p = Graph()
        p.add_vertices([0, 0])
        p.add_edge(0, 1)
        p.add_edge(0, 1, label="x", directed=True)
        # Only the (0, 1) data pair carries both edges.
        assert CSCE(g).count(p, "edge_induced") == 1

    def test_vertex_induced_rejects_extra_parallel_edge(self):
        g = self._mixed_graph()
        p = Graph()
        p.add_vertices([0, 0])
        p.add_edge(0, 1)  # only the undirected edge: the directed one is extra
        assert CSCE(g).count(p, "vertex_induced") == brute_count(
            g, p, "vertex_induced"
        )
        assert CSCE(g).count(p, "vertex_induced") == 0


class TestTimeLimits:
    def test_counting_timeout_returns_partial(self):
        from repro.graph.generators import power_law_graph
        from repro.graph.sampling import sample_pattern

        g = power_law_graph(500, 6, num_labels=2, seed=7)
        p = sample_pattern(g, 10, rng=3, style="dense")
        result = CSCE(g).match(p, "edge_induced", count_only=True, time_limit=0.02)
        # Either it finished fast or it reports the timeout cleanly.
        if result.timed_out:
            assert result.count >= 0

    @pytest.mark.parametrize("engine_name", ["GuP", "RapidMatch", "VEQ", "VF3"])
    def test_baseline_time_limits(self, engine_name):
        from repro.bench import make_engine
        from repro.graph.generators import power_law_graph
        from repro.graph.sampling import sample_pattern

        g = power_law_graph(400, 6, seed=8)
        p = sample_pattern(g, 9, rng=1, style="dense")
        engine = make_engine(engine_name, g)
        variant = "vertex_induced" if engine_name == "VF3" else "edge_induced"
        result = engine.match(p, variant, count_only=True, time_limit=0.05)
        # Must return (not hang), flagging the timeout if it hit it.
        assert result.count >= 0

    def test_time_limit_exception_carries_partial_count(self):
        exc = TimeLimitExceeded("x", partial_count=3)
        assert exc.partial_count == 3


class TestDegenerateInputs:
    def test_single_edge_everything(self):
        g = Graph.from_edges(2, [(0, 1)])
        p = Graph.from_edges(2, [(0, 1)])
        engine = CSCE(g)
        assert engine.count(p, "edge_induced") == 2
        assert engine.count(p, "vertex_induced") == 2
        assert engine.count(p, "homomorphic") == 2

    def test_pattern_larger_than_graph(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        p = by_name("clique8")
        assert CSCE(g).count(p, "edge_induced") == 0

    def test_pattern_with_all_isolated_vertices(self):
        g = Graph()
        g.add_vertices([0, 0, 0])
        p = Graph()
        p.add_vertices([0, 0])
        engine = CSCE(g)
        assert engine.count(p, "edge_induced") == 6  # 3 * 2 ordered pairs
        assert engine.count(p, "homomorphic") == 9

    def test_empty_data_graph(self):
        g = Graph()
        p = Graph.from_edges(2, [(0, 1)])
        assert CSCE(g).count(p, "edge_induced") == 0

    def test_pattern_label_absent_from_data(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        p = Graph()
        p.add_vertices(["ghost", "ghost"])
        p.add_edge(0, 1)
        for variant in Variant:
            assert CSCE(g).count(p, variant) == 0

    def test_dense_data_sparse_pattern(self):
        g = by_name("clique8")
        p = path(5)
        assert CSCE(g).count(p, "edge_induced") == brute_count(g, p, "edge_induced")
        # Induced P5 inside a clique: impossible.
        assert CSCE(g).count(p, "vertex_induced") == 0


class TestStatsReporting:
    def test_sce_report_facade(self):
        g = make_random_graph(15, 30, num_labels=3, seed=12)
        engine = CSCE(g)
        p = by_name("star4").relabeled(
            [g.vertex_label(0)] * 5, name="star"
        )
        stats = engine.sce_report(p)
        # Star leaves are pairwise independent.
        assert stats.sce_pairs >= 6
        assert 0.0 <= stats.occurrence <= 1.0

    def test_match_stats_present(self, square_with_diagonal):
        result = CSCE(square_with_diagonal).match(path(3))
        for key in ("nodes", "computed", "memo_hits", "intersections"):
            assert key in result.stats

    def test_counting_stats_present(self, square_with_diagonal):
        result = CSCE(square_with_diagonal).match(path(3), count_only=True)
        for key in ("nodes", "factorizations", "group_memo_hits"):
            assert key in result.stats


class TestQueryWithRestrictions:
    def test_query_supports_restrictions(self):
        g = make_random_graph(10, 25, seed=44)
        engine = CSCE(g)
        full = engine.query("(a)--(b)--(c)--(a)")
        restricted = engine.query(
            "(a)--(b)--(c)--(a)", restrictions=[(0, 1), (1, 2)]
        )
        assert restricted.count * 6 == full.count
