"""Unit tests for CCSR store persistence."""

import pytest

from repro.ccsr import CCSRStore, load_store, save_store, store_file_size
from repro.core import CSCE
from repro.errors import FormatError
from repro.graph import Graph

from conftest import make_fig1_graph, make_random_graph


@pytest.fixture
def fig1_store():
    return CCSRStore(make_fig1_graph())


class TestRoundTrip:
    def test_graph_survives(self, tmp_path, fig1_store):
        path = tmp_path / "store.npz"
        save_store(fig1_store, path)
        loaded = load_store(path)
        assert loaded.to_graph() == make_fig1_graph()

    def test_metadata_survives(self, tmp_path, fig1_store):
        path = tmp_path / "store.npz"
        save_store(fig1_store, path)
        loaded = load_store(path)
        assert loaded.name == fig1_store.name
        assert loaded.num_vertices == fig1_store.num_vertices
        assert loaded.num_edges == fig1_store.num_edges
        assert loaded.vertex_labels == fig1_store.vertex_labels
        assert loaded.label_frequency == fig1_store.label_frequency
        assert set(loaded.clusters) == set(fig1_store.clusters)

    def test_label_types_preserved(self, tmp_path):
        g = Graph()
        g.add_vertices([0, "0", 1])  # int 0 and str "0" must stay distinct
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        path = tmp_path / "store.npz"
        save_store(CCSRStore(g), path)
        loaded = load_store(path)
        assert loaded.vertex_labels == [0, "0", 1]

    def test_edge_labels_and_direction_preserved(self, tmp_path):
        g = Graph()
        g.add_vertices(["A", "B"])
        g.add_edge(0, 1, label="rel", directed=True)
        g.add_edge(1, 0, label=7, directed=True)
        path = tmp_path / "store.npz"
        save_store(CCSRStore(g), path)
        assert load_store(path).to_graph() == g

    def test_matching_works_on_loaded_store(self, tmp_path):
        g = make_random_graph(20, 45, num_labels=3, seed=91)
        from repro.graph.sampling import sample_pattern

        p = sample_pattern(g, 4, rng=0)
        path = tmp_path / "store.npz"
        save_store(CCSRStore(g), path)
        fresh = CSCE(g)
        loaded = CSCE(load_store(path))
        for variant in ("edge_induced", "vertex_induced", "homomorphic"):
            assert loaded.count(p, variant) == fresh.count(p, variant)

    def test_empty_graph(self, tmp_path):
        path = tmp_path / "store.npz"
        save_store(CCSRStore(Graph()), path)
        loaded = load_store(path)
        assert loaded.num_vertices == 0
        assert loaded.num_clusters == 0


class TestErrors:
    def test_not_an_archive(self, tmp_path):
        import numpy as np

        path = tmp_path / "other.npz"
        np.savez(path, data=np.arange(3))
        with pytest.raises(FormatError, match="not a CCSR store"):
            load_store(path)

    def test_unsupported_label_type(self, tmp_path, fig1_store):
        g = Graph()
        g.add_vertices([(1, 2)])  # tuple labels cannot be persisted
        with pytest.raises(FormatError, match="cannot be persisted"):
            save_store(CCSRStore(g), tmp_path / "x.npz")


class TestFileSize:
    def test_size_estimate_positive(self, fig1_store):
        assert store_file_size(fig1_store) > 0

    def test_size_grows_with_graph(self):
        small = CCSRStore(make_random_graph(10, 20, seed=1))
        large = CCSRStore(make_random_graph(100, 400, seed=1))
        assert store_file_size(large) > store_file_size(small)
