"""Heterogeneous directed queries — the graph-database workload.

Graph databases answer homomorphic pattern queries over directed graphs
with vertex *and* edge labels (the Graphflow/Kùzu setting, Fig. 6 m/n).
This example runs such queries over the Subcategory citation stand-in and
shows how CCSR's clusters index the heterogeneity.

Run with:  python examples/heterogeneous_queries.py
"""

from repro.core import CSCE
from repro.datasets import load_dataset
from repro.graph import Graph

graph = load_dataset("subcategory", scale=0.3)
print(f"data graph: {graph}")
print(f"vertex labels: {len(graph.distinct_vertex_labels())},"
      f" edge labels: {sorted(graph.distinct_edge_labels())}")

engine = CSCE(graph)

# ---------------------------------------------------------------------------
# The CCSR index: one cluster per (src label, dst label, edge label,
# direction) — look-ups replace label checks.
# ---------------------------------------------------------------------------
store = engine.store
print(f"\nCCSR clusters: {store.num_clusters}")
largest = sorted(store.clusters.values(), key=lambda c: -c.num_entries)[:5]
for cluster in largest:
    print(f"  {str(cluster.key):>22}  {cluster.num_entries} entries")

# ---------------------------------------------------------------------------
# Query 1: a labeled citation chain  a -[r0]-> b -[r1]-> c.
# Pick the two most frequent vertex labels so the query has answers.
# ---------------------------------------------------------------------------
top_labels = [label for label, _ in store.label_frequency.most_common(3)]
chain = Graph(name="citation-chain")
a, b, c = chain.add_vertices(top_labels[:3])
chain.add_edge(a, b, label=0, directed=True)
chain.add_edge(b, c, label=1, directed=True)

result = engine.match(chain, "homomorphic", count_only=True)
print(f"\nchain query {top_labels[:3]}: {result.count} homomorphic matches"
      f" in {result.total_seconds:.4f}s")

# The same query under injective semantics:
print(f"  edge-induced: {engine.count(chain, 'edge_induced')}")
print(f"  vertex-induced: {engine.count(chain, 'vertex_induced')}")

# ---------------------------------------------------------------------------
# Query 2: a "co-citation" fork — two sources pointing at the same target
# with the same relation. Homomorphism allows the sources to coincide;
# edge-induced matching does not.
# ---------------------------------------------------------------------------
fork = Graph(name="co-citation")
s1, s2 = fork.add_vertices([top_labels[0], top_labels[0]])
t = fork.add_vertex(top_labels[1])
fork.add_edge(s1, t, label=0, directed=True)
fork.add_edge(s2, t, label=0, directed=True)

homo = engine.count(fork, "homomorphic")
edge = engine.count(fork, "edge_induced")
print(f"\nco-citation fork: homomorphic {homo} vs edge-induced {edge}")
print("  (the difference counts the collapsed matches where both pattern"
      " sources map to one data vertex)")

# ---------------------------------------------------------------------------
# Plans adapt to the data: the optimizer starts from the smallest cluster.
# ---------------------------------------------------------------------------
plan = engine.build_plan(chain, "homomorphic")
print(f"\nplan order for the chain query: {plan.order}"
      f" (planner: {plan.planner_name})")
