"""Quickstart: build a graph, match a pattern, inspect the results.

Run with:  python examples/quickstart.py
"""

from repro import CSCE, Graph

# ---------------------------------------------------------------------------
# 1. Build a small heterogeneous data graph.
#
# A tiny social/collaboration graph: persons (P) and projects (J); undirected
# "knows" edges between persons and directed "works_on" edges into projects.
# ---------------------------------------------------------------------------
graph = Graph(name="quickstart")
alice, bob, carol, dave = graph.add_vertices(["P", "P", "P", "P"])
web, db = graph.add_vertices(["J", "J"])

graph.add_edge(alice, bob, label="knows")
graph.add_edge(bob, carol, label="knows")
graph.add_edge(carol, alice, label="knows")
graph.add_edge(carol, dave, label="knows")
graph.add_edge(alice, web, label="works_on", directed=True)
graph.add_edge(bob, web, label="works_on", directed=True)
graph.add_edge(carol, db, label="works_on", directed=True)
graph.add_edge(dave, db, label="works_on", directed=True)

print(f"data graph: {graph}")

# ---------------------------------------------------------------------------
# 2. Describe the pattern: two persons who know each other and work on the
#    same project.
# ---------------------------------------------------------------------------
pattern = Graph(name="coworkers")
p1, p2 = pattern.add_vertices(["P", "P"])
project = pattern.add_vertex("J")
pattern.add_edge(p1, p2, label="knows")
pattern.add_edge(p1, project, label="works_on", directed=True)
pattern.add_edge(p2, project, label="works_on", directed=True)

# ---------------------------------------------------------------------------
# 3. Match. The engine clusters the data graph once (CCSR), then plans and
#    executes per query.
# ---------------------------------------------------------------------------
engine = CSCE(graph)

for variant in ("edge_induced", "vertex_induced", "homomorphic"):
    result = engine.match(pattern, variant)
    print(f"\n{variant}: {result.count} embeddings"
          f" (read {result.read_seconds:.4f}s, plan {result.plan_seconds:.4f}s,"
          f" execute {result.elapsed:.4f}s)")
    names = {alice: "alice", bob: "bob", carol: "carol", dave: "dave",
             web: "web", db: "db"}
    for embedding in result.embeddings:
        mapped = {f"u{u}": names[v] for u, v in sorted(embedding.items())}
        print(f"  {mapped}")

# ---------------------------------------------------------------------------
# 4. Counting without materializing embeddings uses SCE factorization.
# ---------------------------------------------------------------------------
count = engine.count(pattern, "edge_induced")
print(f"\ncount-only edge-induced: {count}")

# ---------------------------------------------------------------------------
# 5. Inspect the optimized plan.
# ---------------------------------------------------------------------------
plan = engine.build_plan(pattern, "edge_induced")
print(f"matching order Phi*: {plan.order}")
print(f"dependency DAG edges: {dict(plan.dag.out)}")
print(f"clusters used: {[str(c.key) for c in plan.task_clusters.clusters_used]}")
