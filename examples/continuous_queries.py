"""Standing queries over an evolving graph (offline/online workflow).

The paper's workflow (Fig. 2) builds the CCSR store offline to serve every
later task; graph databases additionally need updates and *continuous*
queries (the Graphflow setting). This example exercises all three:

1. build a store, persist it, reload it (pay clustering once);
2. register a standing pattern query;
3. stream edge insertions/removals and receive only the embedding deltas.

Run with:  python examples/continuous_queries.py
"""

import os
import tempfile

from repro.ccsr import CCSRStore, load_store, save_store
from repro.core import CSCE, ContinuousMatcher
from repro.graph import Graph, pattern

# ---------------------------------------------------------------------------
# 1. Offline: cluster the data graph once and persist the store.
# ---------------------------------------------------------------------------
graph = Graph(name="collab")
people = graph.add_vertices(["P"] * 6)
projects = graph.add_vertices(["J"] * 2)
for a, b in [(0, 1), (1, 2), (3, 4)]:
    graph.add_edge(a, b, label="knows")
for person, project in [(0, 6), (1, 6), (3, 7), (4, 7)]:
    graph.add_edge(person, project, label="works_on", directed=True)

store = CCSRStore(graph)
path = os.path.join(tempfile.mkdtemp(), "collab.ccsr.npz")
save_store(store, path)
print(f"offline: clustered {store.num_edges} edges into"
      f" {store.num_clusters} clusters, saved to {path}")

# ---------------------------------------------------------------------------
# 2. Online: reload the store (no re-clustering) and register the query.
#    Patterns read naturally in the DSL.
# ---------------------------------------------------------------------------
engine = CSCE(load_store(path))
coworkers = pattern(
    "(x:P)-[:knows]-(y:P), (x)-[:works_on]->(j:J), (y)-[:works_on]->(j)"
)
watcher = ContinuousMatcher(engine, coworkers)
print(f"standing query registered: {watcher.total} embeddings initially")

# ---------------------------------------------------------------------------
# 3. Stream updates; the matcher reports only what each edge changes.
# ---------------------------------------------------------------------------
updates = [
    ("insert", 2, 6, "works_on", True),   # person 2 joins project 0
    ("insert", 4, 6, "works_on", True),   # person 4 joins project 0
    ("insert", 2, 4, "knows", False),     # 2 and 4 meet -> new match!
    ("remove", 1, 2, "knows", False),     # 1 and 2 fall out
]
for action, src, dst, label, directed in updates:
    if action == "insert":
        delta = watcher.insert(src, dst, label, directed)
        verb = "created"
    else:
        delta = watcher.remove(src, dst, label, directed)
        verb = "destroyed"
    print(f"{action} ({src}, {dst}, {label}): {verb} {delta.count}"
          f" embeddings (total now {watcher.total})")
    for mapping in delta.embeddings:
        print(f"    {mapping}")

# The incremental total always agrees with a from-scratch recount.
assert watcher.total == engine.count(coworkers)
print(f"\nfinal total {watcher.total} verified against a full recount")
