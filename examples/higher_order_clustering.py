"""Higher-order graph clustering — the Section VII-G case study.

Are two members of a research institution in the same department? Edge-based
clustering of the email graph gets this partly right; clustering by
8-clique co-membership (a higher-order signal computed with subgraph
matching) does much better — and CSCE finds the clique instances quickly.

Run with:  python examples/higher_order_clustering.py
"""

import time

from repro.analysis import (
    clique_restrictions,
    complete_pattern,
    edge_clustering,
    motif_clustering,
    pairwise_f1,
)
from repro.baselines import BacktrackingMatcher
from repro.core import CSCE
from repro.datasets import email_eu

graph, departments = email_eu()
print(f"email graph: {graph}, {len(set(departments))} departments")

# ---------------------------------------------------------------------------
# 1. Edge-based clustering (the baseline the paper compares against).
# ---------------------------------------------------------------------------
edge_labels = edge_clustering(graph)
edge_f1 = pairwise_f1(edge_labels, departments)
print(f"\nedge-based clustering   F1 = {edge_f1:.3f}   (paper: 0.398)")

# ---------------------------------------------------------------------------
# 2. Higher-order clustering over 8-clique co-membership.
# ---------------------------------------------------------------------------
motif = motif_clustering(graph, k=8)
motif_f1 = pairwise_f1(motif.labels, departments)
print(f"8-clique clustering     F1 = {motif_f1:.3f}   (paper: 0.515)")
print(f"  {motif.num_motifs} distinct 8-cliques found in"
      f" {motif.seconds:.3f}s")

# ---------------------------------------------------------------------------
# 3. The subgraph-matching race: CSCE vs a backtracking baseline on the
#    clique-finding step (both use the same symmetry restrictions so each
#    clique is found exactly once).
# ---------------------------------------------------------------------------
pattern = complete_pattern(8)
restrictions = clique_restrictions(8)

start = time.perf_counter()
ours = CSCE(graph).match(pattern, "edge_induced", count_only=True,
                         restrictions=restrictions)
ours_seconds = time.perf_counter() - start

start = time.perf_counter()
theirs = BacktrackingMatcher(graph).match(
    pattern, "edge_induced", count_only=True, restrictions=restrictions
)
theirs_seconds = time.perf_counter() - start

assert ours.count == theirs.count
print(f"\nfinding all {ours.count} 8-clique instances:")
print(f"  CSCE            {ours_seconds:.3f}s")
print(f"  RI-backtracking {theirs_seconds:.3f}s")
print(f"  (paper: 0.39s vs 11.57s on the full EMAIL-EU)")
