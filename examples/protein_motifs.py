"""Protein-complex motif search — the paper's motivating workload.

The introduction motivates large-pattern matching with protein complexes:
DPCMNE detects complexes of up to 360 vertices in protein-interaction
networks such as DIP, and finding further instances of a known complex is
subgraph matching with a *large* pattern.

This example samples complex-like dense patterns (8-20 vertices, the
paper's large-pattern regime) from the DIP stand-in and races CSCE against
the failing-set (DAF/VEQ-style) baseline. Unlabeled protein networks are
exactly where failing-set pruning struggles (paper Finding 3/4) and where
SCE's candidate reuse shines.

Run with:  python examples/protein_motifs.py
"""

import time

from repro.baselines import FailingSetMatcher
from repro.core import CSCE
from repro.datasets import load_dataset
from repro.graph.sampling import is_dense_pattern, sample_pattern

TIME_LIMIT = 10.0
# Existing-works convention: stop after this many embeddings (the paper's
# baselines cap at 1e5).
EMBEDDING_CAP = 50_000

graph = load_dataset("dip", scale=0.5)
print(f"data graph: {graph} (unlabeled protein-interaction network)")

engine = CSCE(graph)
baseline = FailingSetMatcher(graph)

print(f"\n{'size':>4}  {'density':>8}  {'embeddings':>10}  "
      f"{'CSCE (s)':>9}  {'VEQ-style (s)':>14}")
for size in (8, 12, 16, 20):
    pattern = sample_pattern(graph, size, rng=size, style="dense")
    density = "dense" if is_dense_pattern(pattern) else "sparse"

    start = time.perf_counter()
    ours = engine.match(pattern, "edge_induced", count_only=True,
                        time_limit=TIME_LIMIT, max_embeddings=EMBEDDING_CAP)
    ours_seconds = time.perf_counter() - start

    start = time.perf_counter()
    theirs = baseline.match(pattern, "edge_induced", count_only=True,
                            time_limit=TIME_LIMIT,
                            max_embeddings=EMBEDDING_CAP)
    theirs_seconds = time.perf_counter() - start

    if not (ours.timed_out or ours.truncated
            or theirs.timed_out or theirs.truncated):
        assert ours.count == theirs.count, "engines disagree!"
    count = f"{ours.count}{'+' if ours.truncated else ''}"
    theirs_cell = "timeout" if theirs.timed_out else f"{theirs_seconds:.3f}"
    print(f"{size:>4}  {density:>8}  {count:>10}  "
          f"{ours_seconds:>9.3f}  {theirs_cell:>14}")

# ---------------------------------------------------------------------------
# Where does CSCE's time go? Reading clusters and planning stay sub-second
# (Findings 5 and 10); nearly everything is execution, and SCE's memo keeps
# candidate computation off the hot path.
# ---------------------------------------------------------------------------
pattern = sample_pattern(graph, 16, rng=99, style="dense")
result = engine.match(pattern, "edge_induced", count_only=True,
                      time_limit=TIME_LIMIT, max_embeddings=EMBEDDING_CAP)
print(f"\nbreakdown for one size-16 complex: read {result.read_seconds:.4f}s,"
      f" plan {result.plan_seconds:.4f}s, execute {result.elapsed:.4f}s,"
      f" embeddings {result.count}")
stats = result.stats
if "memo_hits" in stats:
    print(f"SCE at work: {stats['memo_hits']} candidate-set reuses vs"
          f" {stats['computed']} fresh computations")
